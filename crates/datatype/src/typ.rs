//! Datatype construction and the size/extent algebra.
//!
//! A [`DataType`] is an immutable tree of combiners over primitives,
//! mirroring the MPI constructors (`MPI_Type_contiguous`,
//! `MPI_Type_vector`, `MPI_Type_create_hvector`, `MPI_Type_indexed`,
//! `MPI_Type_create_hindexed`, `MPI_Type_create_indexed_block`,
//! `MPI_Type_create_struct`, `MPI_Type_create_subarray`,
//! `MPI_Type_create_resized`, `MPI_Type_dup`). All derived quantities —
//! size, extent, lower/upper bound, true bounds, contiguity — are
//! computed eagerly at construction, so committed types are free to
//! query on the hot path.

use crate::error::TypeError;
use crate::primitive::Primitive;
use crate::segment::{Segment, SegmentSink};
use std::cell::OnceCell;
use std::fmt;
use std::rc::Rc;

/// A (blocklength, displacement) pair used by the indexed constructors.
type Block = (u64, i64);

/// FNV-1a, 64-bit. Used for [`DataType::layout_fingerprint`]; chosen for
/// being tiny, dependency-free and stable across platforms (the std
/// `Hasher`s are explicitly not stable between releases).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    // Word-at-a-time FNV-1a variant: one multiply per u64 keeps the
    // fingerprint cheap on wide Indexed/Struct block lists (it sits on
    // the cache-hit path). Weaker per-byte diffusion than classic FNV
    // is fine here — cache keys pair the fingerprint with the type's
    // exact size and true bounds.
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(Self::PRIME);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
pub(crate) enum Kind {
    Primitive(Primitive),
    Contiguous {
        count: u64,
        child: DataType,
    },
    /// Stride is stored in **bytes** internally; the element-stride
    /// constructor converts. Covers both vector and hvector.
    Vector {
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: DataType,
    },
    /// Blocks of (blocklength, displacement-in-bytes). Covers indexed,
    /// hindexed and indexed_block (which lower to this form).
    Indexed {
        blocks: Rc<[Block]>,
        child: DataType,
    },
    Struct {
        /// (blocklength, displacement-in-bytes, field type)
        fields: Rc<[(u64, i64, DataType)]>,
    },
    Resized {
        lb: i64,
        extent: i64,
        child: DataType,
    },
}

/// Memoized result of [`DataType::canonical`]. `Same` (rather than a
/// self-referencing `DataType`) avoids an `Rc` cycle through the node.
#[derive(Debug)]
enum CanonMemo {
    Same,
    Other(DataType),
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) kind: Kind,
    size: u64,
    lb: i64,
    ub: i64,
    true_lb: i64,
    true_ub: i64,
    gapless: bool,
    /// Upper bound on the number of (unmerged) contiguous segments in
    /// one instance — used for planning, not correctness.
    segment_estimate: u64,
    depth: u32,
    /// Lazily computed canonical form (commit-time normalization).
    canon: OnceCell<CanonMemo>,
}

/// Two-level strided description: `outer` groups, each of `inner`
/// equal blocks — the shape of a matrix transpose or a
/// contiguous-of-vector tree. Returned by [`DataType::strided2d_shape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Strided2D {
    pub outer: u64,
    pub inner: u64,
    pub block_bytes: u64,
    pub inner_stride: i64,
    pub outer_stride: i64,
    pub first_disp: i64,
}

/// An MPI derived datatype. Cheap to clone (shared tree).
#[derive(Clone, Debug)]
pub struct DataType {
    node: Rc<Node>,
    committed: bool,
}

/// Decoded construction of a datatype (`MPI_Type_get_envelope` +
/// `MPI_Type_get_contents`). Element-unit constructors (`vector`,
/// `indexed`, `indexed_block`, `subarray`) are reported in their
/// canonical byte-displacement form, mirroring how Open MPI normalizes
/// on commit.
#[derive(Clone, Debug)]
pub enum Combiner {
    Named(Primitive),
    Contiguous {
        count: u64,
        child: DataType,
    },
    HVector {
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: DataType,
    },
    HIndexed {
        blocks: Vec<(u64, i64)>,
        child: DataType,
    },
    Struct {
        fields: Vec<(u64, i64, DataType)>,
    },
    Resized {
        lb: i64,
        extent: i64,
        child: DataType,
    },
}

impl DataType {
    // ----- constructors: primitives -----

    fn leaf(p: Primitive) -> DataType {
        let size = p.size();
        DataType {
            node: Rc::new(Node {
                kind: Kind::Primitive(p),
                size,
                lb: 0,
                ub: size as i64,
                true_lb: 0,
                true_ub: size as i64,
                gapless: true,
                segment_estimate: 1,
                depth: 0,
                canon: OnceCell::new(),
            }),
            committed: false,
        }
    }

    pub fn primitive(p: Primitive) -> DataType {
        Self::leaf(p)
    }

    pub fn byte() -> DataType {
        Self::leaf(Primitive::Byte)
    }

    pub fn int() -> DataType {
        Self::leaf(Primitive::Int32)
    }

    pub fn long() -> DataType {
        Self::leaf(Primitive::Int64)
    }

    pub fn float() -> DataType {
        Self::leaf(Primitive::Float32)
    }

    pub fn double() -> DataType {
        Self::leaf(Primitive::Float64)
    }

    // ----- constructors: combiners -----

    /// `MPI_Type_contiguous(count, child)`.
    pub fn contiguous(count: u64, child: &DataType) -> Result<DataType, TypeError> {
        if count == 0 {
            return Err(TypeError::InvalidArgument("contiguous count must be > 0"));
        }
        let c = child.node.as_ref();
        let size = c.size * count;
        let ext = child.extent();
        let (lb, ub) = (c.lb, c.ub + (count as i64 - 1) * ext);
        let (true_lb, true_ub) = if c.size == 0 {
            (0, 0)
        } else {
            (c.true_lb, c.true_ub + (count as i64 - 1) * ext)
        };
        let gapless = c.size == 0 || (c.gapless && (count == 1 || child.dense()));
        Ok(DataType {
            node: Rc::new(Node {
                kind: Kind::Contiguous {
                    count,
                    child: child.clone(),
                },
                size,
                lb,
                ub,
                true_lb,
                true_ub,
                gapless,
                segment_estimate: if gapless {
                    1
                } else {
                    count.saturating_mul(c.segment_estimate)
                },
                depth: c.depth + 1,
                canon: OnceCell::new(),
            }),
            committed: false,
        })
    }

    /// `MPI_Type_vector(count, blocklen, stride, child)` — stride in
    /// *elements* of `child`.
    pub fn vector(
        count: u64,
        blocklen: u64,
        stride: i64,
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        let stride_bytes = stride * child.extent();
        Self::hvector(count, blocklen, stride_bytes, child)
    }

    /// `MPI_Type_create_hvector(count, blocklen, stride, child)` —
    /// stride in *bytes*.
    pub fn hvector(
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        if count == 0 || blocklen == 0 {
            return Err(TypeError::InvalidArgument(
                "vector count/blocklen must be > 0",
            ));
        }
        let c = child.node.as_ref();
        let ext = child.extent();
        let size = c.size * blocklen * count;

        let first = 0i64;
        let last = (count as i64 - 1) * stride_bytes;
        let block_span_ub = (blocklen as i64 - 1) * ext;
        let lb = first.min(last) + c.lb;
        let ub = first.max(last) + block_span_ub + c.ub;
        let (true_lb, true_ub) = if c.size == 0 {
            (0, 0)
        } else {
            (
                first.min(last) + c.true_lb,
                first.max(last) + block_span_ub + c.true_ub,
            )
        };

        let block_contig = child.dense() || (blocklen == 1 && c.gapless);
        let block_data_len = (blocklen * c.size) as i64;
        let gapless =
            c.size == 0 || (block_contig && (count == 1 || stride_bytes == block_data_len));

        Ok(DataType {
            node: Rc::new(Node {
                kind: Kind::Vector {
                    count,
                    blocklen,
                    stride_bytes,
                    child: child.clone(),
                },
                size,
                lb,
                ub,
                true_lb,
                true_ub,
                gapless,
                segment_estimate: if gapless {
                    1
                } else {
                    count.saturating_mul(if block_contig {
                        1
                    } else {
                        blocklen.saturating_mul(c.segment_estimate)
                    })
                },
                depth: c.depth + 1,
                canon: OnceCell::new(),
            }),
            committed: false,
        })
    }

    /// `MPI_Type_indexed(blocklens, displacements, child)` —
    /// displacements in *elements* of `child`.
    pub fn indexed(
        blocklens: &[u64],
        displs: &[i64],
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        if blocklens.len() != displs.len() {
            return Err(TypeError::LengthMismatch {
                lengths: blocklens.len(),
                displacements: displs.len(),
            });
        }
        let ext = child.extent();
        let blocks: Vec<Block> = blocklens
            .iter()
            .zip(displs)
            .map(|(&l, &d)| (l, d * ext))
            .collect();
        Self::hindexed_blocks(blocks, child)
    }

    /// `MPI_Type_create_hindexed` — displacements in *bytes*.
    pub fn hindexed(
        blocklens: &[u64],
        byte_displs: &[i64],
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        if blocklens.len() != byte_displs.len() {
            return Err(TypeError::LengthMismatch {
                lengths: blocklens.len(),
                displacements: byte_displs.len(),
            });
        }
        let blocks: Vec<Block> = blocklens
            .iter()
            .zip(byte_displs)
            .map(|(&l, &d)| (l, d))
            .collect();
        Self::hindexed_blocks(blocks, child)
    }

    /// `MPI_Type_create_indexed_block(blocklen, displacements, child)`.
    pub fn indexed_block(
        blocklen: u64,
        displs: &[i64],
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        let ext = child.extent();
        let blocks: Vec<Block> = displs.iter().map(|&d| (blocklen, d * ext)).collect();
        Self::hindexed_blocks(blocks, child)
    }

    fn hindexed_blocks(blocks: Vec<Block>, child: &DataType) -> Result<DataType, TypeError> {
        if blocks.is_empty() {
            return Err(TypeError::InvalidArgument(
                "indexed type needs at least one block",
            ));
        }
        let c = child.node.as_ref();
        let ext = child.extent();
        let size: u64 = blocks.iter().map(|(l, _)| l * c.size).sum();

        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut true_lb = i64::MAX;
        let mut true_ub = i64::MIN;
        for &(l, d) in &blocks {
            // Zero-length blocks still contribute to lb/ub in MPI; we
            // follow the simpler convention of ignoring them entirely.
            if l == 0 {
                continue;
            }
            lb = lb.min(d + c.lb);
            ub = ub.max(d + (l as i64 - 1) * ext + c.ub);
            if c.size > 0 {
                true_lb = true_lb.min(d + c.true_lb);
                true_ub = true_ub.max(d + (l as i64 - 1) * ext + c.true_ub);
            }
        }
        if lb == i64::MAX {
            // All blocks empty.
            lb = 0;
            ub = 0;
        }
        if true_lb == i64::MAX {
            true_lb = 0;
            true_ub = 0;
        }

        // Gapless iff every block's data is itself contiguous and the
        // blocks' data spans tile an interval exactly.
        let gapless = if c.size == 0 {
            true
        } else {
            let block_contig = child.dense() || c.gapless;
            let per_block_ok = blocks.iter().all(|&(l, _)| l <= 1 || child.dense());
            if block_contig && per_block_ok {
                let mut spans: Vec<(i64, i64)> = blocks
                    .iter()
                    .filter(|&&(l, _)| l > 0)
                    .map(|&(l, d)| {
                        let start = d + c.true_lb;
                        (start, start + (l * c.size) as i64)
                    })
                    .collect();
                spans.sort_unstable();
                spans.windows(2).all(|w| w[0].1 == w[1].0)
            } else {
                false
            }
        };

        let segment_estimate = blocks
            .iter()
            .map(|&(l, _)| {
                if child.dense() {
                    1
                } else {
                    l.saturating_mul(c.segment_estimate)
                }
            })
            .sum::<u64>()
            .max(1);

        Ok(DataType {
            node: Rc::new(Node {
                kind: Kind::Indexed {
                    blocks: blocks.into(),
                    child: child.clone(),
                },
                size,
                lb,
                ub,
                true_lb,
                true_ub,
                gapless,
                segment_estimate: if gapless { 1 } else { segment_estimate },
                depth: c.depth + 1,
                canon: OnceCell::new(),
            }),
            committed: false,
        })
    }

    /// `MPI_Type_create_struct(blocklens, byte displacements, types)`.
    pub fn structure(
        blocklens: &[u64],
        byte_displs: &[i64],
        types: &[DataType],
    ) -> Result<DataType, TypeError> {
        if blocklens.len() != byte_displs.len() || blocklens.len() != types.len() {
            return Err(TypeError::LengthMismatch {
                lengths: blocklens.len(),
                displacements: byte_displs.len(),
            });
        }
        if blocklens.is_empty() {
            return Err(TypeError::InvalidArgument(
                "struct needs at least one field",
            ));
        }
        let fields: Vec<(u64, i64, DataType)> = blocklens
            .iter()
            .zip(byte_displs)
            .zip(types)
            .map(|((&l, &d), t)| (l, d, t.clone()))
            .collect();

        let mut size = 0u64;
        let mut lb = i64::MAX;
        let mut ub = i64::MIN;
        let mut true_lb = i64::MAX;
        let mut true_ub = i64::MIN;
        let mut depth = 0;
        let mut seg = 0u64;
        for (l, d, t) in &fields {
            let n = t.node.as_ref();
            depth = depth.max(n.depth);
            if *l == 0 || n.size == 0 {
                continue;
            }
            size += l * n.size;
            let ext = t.extent();
            lb = lb.min(d + n.lb);
            ub = ub.max(d + (*l as i64 - 1) * ext + n.ub);
            true_lb = true_lb.min(d + n.true_lb);
            true_ub = true_ub.max(d + (*l as i64 - 1) * ext + n.true_ub);
            seg = seg.saturating_add(if t.dense() {
                1
            } else {
                l.saturating_mul(n.segment_estimate)
            });
        }
        if lb == i64::MAX {
            lb = 0;
            ub = 0;
            true_lb = 0;
            true_ub = 0;
        }

        let gapless = {
            let mut spans: Vec<(i64, i64)> = Vec::new();
            let mut simple = true;
            for (l, d, t) in &fields {
                let n = t.node.as_ref();
                if *l == 0 || n.size == 0 {
                    continue;
                }
                if (*l > 1 && !t.dense()) || !n.gapless {
                    simple = false;
                    break;
                }
                let start = d + n.true_lb;
                spans.push((start, start + (*l * n.size) as i64));
            }
            if simple {
                spans.sort_unstable();
                spans.windows(2).all(|w| w[0].1 == w[1].0)
            } else {
                false
            }
        };

        Ok(DataType {
            node: Rc::new(Node {
                kind: Kind::Struct {
                    fields: fields.into(),
                },
                size,
                lb,
                ub,
                true_lb,
                true_ub,
                gapless,
                segment_estimate: if gapless { 1 } else { seg.max(1) },
                depth: depth + 1,
                canon: OnceCell::new(),
            }),
            committed: false,
        })
    }

    /// `MPI_Type_create_resized(child, lb, extent)`.
    pub fn resized(child: &DataType, lb: i64, extent: i64) -> Result<DataType, TypeError> {
        if extent <= 0 {
            return Err(TypeError::InvalidArgument(
                "resized extent must be positive",
            ));
        }
        let c = child.node.as_ref();
        Ok(DataType {
            node: Rc::new(Node {
                kind: Kind::Resized {
                    lb,
                    extent,
                    child: child.clone(),
                },
                size: c.size,
                lb,
                ub: lb + extent,
                true_lb: c.true_lb,
                true_ub: c.true_ub,
                gapless: c.gapless,
                segment_estimate: c.segment_estimate,
                depth: c.depth + 1,
                canon: OnceCell::new(),
            }),
            committed: false,
        })
    }

    /// `MPI_Type_create_subarray` for a row/column-major array.
    ///
    /// `sizes` is the full array shape, `subsizes` the selected region,
    /// `starts` the region origin (all in elements, slowest-varying
    /// dimension first, i.e. C order).
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        child: &DataType,
    ) -> Result<DataType, TypeError> {
        if sizes.len() != subsizes.len() || sizes.len() != starts.len() || sizes.is_empty() {
            return Err(TypeError::InvalidArgument(
                "subarray shape arrays must match and be non-empty",
            ));
        }
        for d in 0..sizes.len() {
            if subsizes[d] == 0 || starts[d] + subsizes[d] > sizes[d] {
                return Err(TypeError::InvalidArgument("subarray region out of bounds"));
            }
        }
        // Build innermost-out: contiguous run of the last dimension,
        // then an hvector per outer dimension; finally shift by the
        // start offsets with a resized-hindexed wrapper.
        let elem = child.extent();
        let mut t = DataType::contiguous(subsizes[sizes.len() - 1], child)?;
        let mut row_bytes = elem * sizes[sizes.len() - 1] as i64;
        for d in (0..sizes.len() - 1).rev() {
            t = DataType::hvector(subsizes[d], 1, row_bytes, &t)?;
            row_bytes *= sizes[d] as i64;
        }
        // Displacement of the region origin.
        let mut disp = 0i64;
        let mut stride = elem;
        for d in (0..sizes.len()).rev() {
            disp += starts[d] as i64 * stride;
            stride *= sizes[d] as i64;
        }
        let total_bytes = sizes.iter().product::<u64>() as i64 * elem;
        let shifted = DataType::hindexed(&[1], &[disp], &t)?;
        // The subarray's extent is the whole array, so consecutive
        // counts index consecutive full arrays.
        DataType::resized(&shifted, 0, total_bytes)
    }

    /// `MPI_Type_dup`.
    pub fn dup(&self) -> DataType {
        self.clone()
    }

    /// `MPI_Type_commit`. Construction already computed every cached
    /// property, so commit only flips the usability flag (and is the
    /// natural place future normalization passes would hang).
    pub fn commit(mut self) -> DataType {
        self.committed = true;
        self
    }

    // ----- queries -----

    pub fn is_committed(&self) -> bool {
        self.committed
    }

    /// Number of bytes of actual data in one instance (`MPI_Type_size`).
    pub fn size(&self) -> u64 {
        self.node.size
    }

    /// `MPI_Type_get_extent`: (lb, extent).
    pub fn extent(&self) -> i64 {
        self.node.ub - self.node.lb
    }

    pub fn lb(&self) -> i64 {
        self.node.lb
    }

    pub fn ub(&self) -> i64 {
        self.node.ub
    }

    /// `MPI_Type_get_true_extent`: bounds of the actual data.
    pub fn true_lb(&self) -> i64 {
        self.node.true_lb
    }

    pub fn true_ub(&self) -> i64 {
        self.node.true_ub
    }

    pub fn true_extent(&self) -> i64 {
        self.node.true_ub - self.node.true_lb
    }

    /// Is one instance's data a single contiguous run (no internal
    /// gaps)? Note this says nothing about repetition: see [`Self::dense`].
    pub fn is_gapless(&self) -> bool {
        self.node.gapless
    }

    /// Gapless *and* tiling: `count` consecutive instances form one
    /// contiguous run. This is the property the protocols' contiguous
    /// fast paths key on.
    pub fn dense(&self) -> bool {
        self.node.gapless && self.extent() == self.node.size as i64 && self.node.size > 0
    }

    /// Is a send/recv of `count` instances fully contiguous in memory?
    pub fn is_contiguous(&self, count: u64) -> bool {
        self.node.size > 0
            && self.node.gapless
            && (count <= 1 || self.extent() == self.node.size as i64)
    }

    /// Upper bound on contiguous segments in one instance.
    pub fn segment_estimate(&self) -> u64 {
        self.node.segment_estimate
    }

    /// Tree depth (primitives are 0).
    pub fn depth(&self) -> u32 {
        self.node.depth
    }

    pub(crate) fn kind(&self) -> &Kind {
        &self.node.kind
    }

    /// Flatten `count` instances into merged contiguous segments.
    /// Displacements are relative to the buffer origin; instance `i`
    /// starts at `i * extent`.
    pub fn segments(&self, count: u64) -> Vec<Segment> {
        let mut sink = SegmentSink::new();
        self.for_each_segment(count, |d, l| sink.push(d, l));
        sink.finish()
    }

    /// Stream the (unmerged-at-instance-granularity, merged within
    /// dense runs) segments of `count` instances in datatype order.
    pub fn for_each_segment(&self, count: u64, mut f: impl FnMut(i64, u64)) {
        let ext = self.extent();
        for i in 0..count {
            self.walk(i as i64 * ext, &mut f);
        }
    }

    fn walk(&self, base: i64, f: &mut impl FnMut(i64, u64)) {
        let n = self.node.as_ref();
        if n.size == 0 {
            return;
        }
        if n.gapless {
            f(base + n.true_lb, n.size);
            return;
        }
        match &n.kind {
            Kind::Primitive(p) => f(base, p.size()),
            Kind::Contiguous { count, child } => {
                let ext = child.extent();
                for i in 0..*count {
                    child.walk(base + i as i64 * ext, f);
                }
            }
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                let ext = child.extent();
                let dense = child.dense();
                for i in 0..*count {
                    let b = base + i as i64 * stride_bytes;
                    if dense {
                        f(b + child.true_lb(), blocklen * child.size());
                    } else {
                        for j in 0..*blocklen {
                            child.walk(b + j as i64 * ext, f);
                        }
                    }
                }
            }
            Kind::Indexed { blocks, child } => {
                let ext = child.extent();
                let dense = child.dense();
                for &(l, d) in blocks.iter() {
                    if l == 0 {
                        continue;
                    }
                    let b = base + d;
                    if dense {
                        f(b + child.true_lb(), l * child.size());
                    } else {
                        for j in 0..l {
                            child.walk(b + j as i64 * ext, f);
                        }
                    }
                }
            }
            Kind::Struct { fields } => {
                for (l, d, t) in fields.iter() {
                    if *l == 0 || t.size() == 0 {
                        continue;
                    }
                    let ext = t.extent();
                    for j in 0..*l {
                        t.walk(base + d + j as i64 * ext, f);
                    }
                }
            }
            Kind::Resized { child, .. } => child.walk(base, f),
        }
    }

    /// Visit every primitive leaf in datatype order (for signatures).
    pub fn for_each_primitive(&self, mut f: impl FnMut(Primitive, u64)) {
        self.visit_prims(&mut f);
    }

    fn visit_prims(&self, f: &mut impl FnMut(Primitive, u64)) {
        match &self.node.kind {
            Kind::Primitive(p) => f(*p, 1),
            Kind::Contiguous { count, child } => {
                if child.is_homogeneous().is_some() {
                    // All leaves identical: emit one run.
                    let p = child.is_homogeneous().unwrap();
                    f(p, count * child.size() / p.size());
                } else {
                    for _ in 0..*count {
                        child.visit_prims(f);
                    }
                }
            }
            Kind::Vector {
                count,
                blocklen,
                child,
                ..
            } => {
                if let Some(p) = child.is_homogeneous() {
                    f(p, count * blocklen * child.size() / p.size());
                } else {
                    for _ in 0..count * blocklen {
                        child.visit_prims(f);
                    }
                }
            }
            Kind::Indexed { blocks, child } => {
                let total: u64 = blocks.iter().map(|(l, _)| *l).sum();
                if let Some(p) = child.is_homogeneous() {
                    f(p, total * child.size() / p.size());
                } else {
                    for _ in 0..total {
                        child.visit_prims(f);
                    }
                }
            }
            Kind::Struct { fields } => {
                for (l, _, t) in fields.iter() {
                    for _ in 0..*l {
                        t.visit_prims(f);
                    }
                }
            }
            Kind::Resized { child, .. } => child.visit_prims(f),
        }
    }

    /// Stable identity of the underlying (shared) type tree. Equal ids
    /// imply identical layout; used as a cache key by the GPU engine
    /// (the paper caches CUDA-DEV lists per datatype).
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.node) as usize
    }

    /// Structural fingerprint of the type tree: an FNV-1a hash over the
    /// normalized constructor tree (the same byte-displacement form
    /// [`Self::combiner`] reports). Two types built through identical
    /// constructor calls — even in different Sessions — hash equal, so
    /// caches keyed on the fingerprint survive type re-construction,
    /// which identity keys ([`Self::id`]) never do.
    ///
    /// Unlike [`crate::Signature`] (the *primitive-sequence* equivalence
    /// MPI matching uses), the fingerprint distinguishes *layouts*:
    /// `vector(8, 8, 16, BYTE)` and `contiguous(64, BYTE)` carry the
    /// same signature but hash differently, which is what a cache of
    /// layout-dependent descriptors needs. Equal fingerprints imply
    /// identical layout up to hash collisions; cache keys should pair
    /// the fingerprint with cheap exact invariants (size, true bounds)
    /// to make collisions harmless in practice.
    pub fn layout_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    fn fingerprint_into(&self, h: &mut Fnv1a) {
        match &self.node.kind {
            Kind::Primitive(p) => {
                h.write_u64(1);
                h.write_u64(p.code());
            }
            Kind::Contiguous { count, child } => {
                h.write_u64(2);
                h.write_u64(*count);
                child.fingerprint_into(h);
            }
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                h.write_u64(3);
                h.write_u64(*count);
                h.write_u64(*blocklen);
                h.write_i64(*stride_bytes);
                child.fingerprint_into(h);
            }
            Kind::Indexed { blocks, child } => {
                h.write_u64(4);
                h.write_u64(blocks.len() as u64);
                for (len, disp) in blocks.iter() {
                    h.write_u64(*len);
                    h.write_i64(*disp);
                }
                child.fingerprint_into(h);
            }
            Kind::Struct { fields } => {
                h.write_u64(5);
                h.write_u64(fields.len() as u64);
                for (len, disp, ty) in fields.iter() {
                    h.write_u64(*len);
                    h.write_i64(*disp);
                    ty.fingerprint_into(h);
                }
            }
            Kind::Resized { lb, extent, child } => {
                h.write_u64(6);
                h.write_i64(*lb);
                h.write_i64(*extent);
                child.fingerprint_into(h);
            }
        }
    }

    /// How this type was constructed — the analogue of
    /// `MPI_Type_get_envelope` + `MPI_Type_get_contents`, letting tools
    /// and tests decode committed types.
    pub fn combiner(&self) -> Combiner {
        match &self.node.kind {
            Kind::Primitive(p) => Combiner::Named(*p),
            Kind::Contiguous { count, child } => Combiner::Contiguous {
                count: *count,
                child: child.clone(),
            },
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => Combiner::HVector {
                count: *count,
                blocklen: *blocklen,
                stride_bytes: *stride_bytes,
                child: child.clone(),
            },
            Kind::Indexed { blocks, child } => Combiner::HIndexed {
                blocks: blocks.to_vec(),
                child: child.clone(),
            },
            Kind::Struct { fields } => Combiner::Struct {
                fields: fields.iter().map(|(l, d, t)| (*l, *d, t.clone())).collect(),
            },
            Kind::Resized { lb, extent, child } => Combiner::Resized {
                lb: *lb,
                extent: *extent,
                child: child.clone(),
            },
        }
    }

    /// If this type is expressible as uniformly strided equal blocks —
    /// the shape the paper's specialized vector kernel handles — return
    /// `(block_count, block_bytes, stride_bytes, first_disp)`.
    ///
    /// Wrappers that do not change the data layout (`resized`,
    /// single-count `contiguous`) are looked through.
    pub fn vector_shape(&self) -> Option<(u64, u64, i64, i64)> {
        if self.node.size == 0 {
            return None;
        }
        if self.node.gapless {
            return Some((1, self.node.size, self.node.size as i64, self.node.true_lb));
        }
        match &self.node.kind {
            // Each block must be one contiguous run: either the child
            // tiles (dense) or there is a single gapless child per
            // block. The latter covers negative-stride hvectors over
            // gapless-but-not-dense children, which previously fell
            // back to the generic path.
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } if child.dense() || (*blocklen == 1 && child.is_gapless()) => Some((
                *count,
                blocklen * child.size(),
                *stride_bytes,
                child.true_lb(),
            )),
            Kind::Contiguous { count: 1, child } => child.vector_shape(),
            Kind::Contiguous { count, child } => {
                // contiguous(n, vector) is a vector with n*count blocks
                // only if the pattern continues across instances.
                let (c, b, s, d) = child.vector_shape()?;
                if child.extent() == (c as i64) * s {
                    Some((count * c, b, s, d))
                } else {
                    None
                }
            }
            Kind::Resized { child, .. } => child.vector_shape(),
            Kind::Indexed { blocks, child } if child.dense() || child.is_gapless() => {
                // Uniform indexed blocks with constant stride. A
                // gapless-but-not-dense child only yields contiguous
                // blocks when each block holds a single instance.
                let mut it = blocks.iter().filter(|(l, _)| *l > 0);
                let &(l0, d0) = it.next()?;
                if l0 > 1 && !child.dense() {
                    return None;
                }
                let mut prev = d0;
                let mut stride: Option<i64> = None;
                let mut n = 1u64;
                for &(l, d) in it {
                    if l != l0 {
                        return None;
                    }
                    match stride {
                        None => stride = Some(d - prev),
                        Some(s) if d - prev == s => {}
                        _ => return None,
                    }
                    prev = d;
                    n += 1;
                }
                let block_bytes = l0 * child.size();
                let s = stride.unwrap_or(block_bytes as i64);
                Some((n, block_bytes, s, d0 + child.true_lb()))
            }
            _ => None,
        }
    }

    /// If this type is a two-level uniformly strided pattern — `outer`
    /// repetitions, each of `inner` equal blocks — return the
    /// [`Strided2D`] description. This is the shape of a matrix
    /// transpose (hvector over vector) or a contiguous-of-vector tree;
    /// the GPU engine can generate work units for it arithmetically,
    /// with no descriptor list at all.
    ///
    /// Shapes already expressible by [`Self::vector_shape`] are not
    /// reported (callers try the cheaper one-level form first).
    pub fn strided2d_shape(&self) -> Option<Strided2D> {
        if self.node.size == 0 || self.vector_shape().is_some() {
            return None;
        }
        match &self.node.kind {
            Kind::Resized { child, .. } => child.strided2d_shape(),
            Kind::Contiguous { count: 1, child } => child.strided2d_shape(),
            // One strided row of blocks per child instance.
            Kind::Contiguous { count, child } => {
                let (c, b, s, d) = child.vector_shape()?;
                Some(Strided2D {
                    outer: *count,
                    inner: c,
                    block_bytes: b,
                    inner_stride: s,
                    outer_stride: child.extent(),
                    first_disp: d,
                })
            }
            // Outer stride over a strided row; blocklen 1 keeps each
            // outer step a single row.
            Kind::Vector {
                count,
                blocklen: 1,
                stride_bytes,
                child,
            } => {
                let (c, b, s, d) = child.vector_shape()?;
                Some(Strided2D {
                    outer: *count,
                    inner: c,
                    block_bytes: b,
                    inner_stride: s,
                    outer_stride: *stride_bytes,
                    first_disp: d,
                })
            }
            _ => None,
        }
    }

    // ----- canonicalization -----

    /// Commit-time canonical form of the constructor tree.
    ///
    /// Collapses degenerate wrappers (count-1 contiguous, extent-neutral
    /// resized, count-1 vectors), folds contiguous children into their
    /// parents, merges data-order-adjacent indexed blocks and rewrites
    /// uniform constant-stride block lists as hvectors — the
    /// normalization TEMPI applies to CUDA-aware datatypes. The result
    /// describes the *same byte walk*: identical segment stream, size,
    /// bounds and extent, so pack/unpack semantics are unchanged. The
    /// canonical tree is what the GPU engine fingerprints, letting
    /// differently constructed but layout-identical types share cached
    /// DEV plans and hit the specialized strided kernels.
    ///
    /// Memoized per node; cheap after the first call.
    pub fn canonical(&self) -> DataType {
        let memo = self.node.canon.get_or_init(|| {
            let cand = self.canon_build();
            // The rewrite rules preserve the byte walk by construction;
            // the data-derived invariants double-check them (gapless
            // governs the walk's merged-run fast path, so it must not
            // drift either). Keep the original tree if a rule ever
            // misbehaves.
            let ok = cand.size() == self.size()
                && cand.true_lb() == self.true_lb()
                && cand.true_ub() == self.true_ub()
                && cand.is_gapless() == self.is_gapless();
            debug_assert!(ok, "canonicalization changed data layout: {self} -> {cand}");
            if !ok || Rc::ptr_eq(&cand.node, &self.node) {
                return CanonMemo::Same;
            }
            // Layout is identical; restore lb/extent when a collapsed
            // wrapper carried different (artificial) bounds.
            let cand = if cand.lb() == self.lb() && cand.ub() == self.ub() {
                cand
            } else {
                match DataType::resized(&cand, self.lb(), self.extent()) {
                    Ok(r) => r,
                    Err(_) => return CanonMemo::Same,
                }
            };
            CanonMemo::Other(cand)
        });
        match memo {
            CanonMemo::Same => self.clone(),
            CanonMemo::Other(t) => DataType {
                node: Rc::clone(&t.node),
                committed: self.committed,
            },
        }
    }

    /// Canonicalize children (memoized), then apply top-level rewrites
    /// to a fixpoint. Returns `self`'s own node when nothing applies.
    fn canon_build(&self) -> DataType {
        let mut t = self.with_canonical_children();
        let mut fuel = 64u32; // each rewrite shrinks the tree; this is a backstop
        while let Some(next) = t.rewrite_top() {
            t = next;
            fuel -= 1;
            if fuel == 0 {
                debug_assert!(false, "canonicalization did not converge: {self}");
                return self.clone();
            }
        }
        t
    }

    fn with_canonical_children(&self) -> DataType {
        fn same(a: &DataType, b: &DataType) -> bool {
            Rc::ptr_eq(&a.node, &b.node)
        }
        match &self.node.kind {
            Kind::Primitive(_) => self.clone(),
            Kind::Contiguous { count, child } => {
                let c = child.canonical();
                if same(&c, child) {
                    self.clone()
                } else {
                    DataType::contiguous(*count, &c).unwrap_or_else(|_| self.clone())
                }
            }
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                let c = child.canonical();
                if same(&c, child) {
                    self.clone()
                } else {
                    DataType::hvector(*count, *blocklen, *stride_bytes, &c)
                        .unwrap_or_else(|_| self.clone())
                }
            }
            Kind::Indexed { blocks, child } => {
                let c = child.canonical();
                if same(&c, child) {
                    self.clone()
                } else {
                    let lens: Vec<u64> = blocks.iter().map(|&(l, _)| l).collect();
                    let disps: Vec<i64> = blocks.iter().map(|&(_, d)| d).collect();
                    DataType::hindexed(&lens, &disps, &c).unwrap_or_else(|_| self.clone())
                }
            }
            Kind::Struct { fields } => {
                let canon: Vec<DataType> = fields.iter().map(|(_, _, t)| t.canonical()).collect();
                if fields.iter().zip(&canon).all(|((_, _, t), c)| same(c, t)) {
                    self.clone()
                } else {
                    let lens: Vec<u64> = fields.iter().map(|(l, _, _)| *l).collect();
                    let disps: Vec<i64> = fields.iter().map(|(_, d, _)| *d).collect();
                    DataType::structure(&lens, &disps, &canon).unwrap_or_else(|_| self.clone())
                }
            }
            Kind::Resized { lb, extent, child } => {
                let c = child.canonical();
                if same(&c, child) {
                    self.clone()
                } else {
                    DataType::resized(&c, *lb, *extent).unwrap_or_else(|_| self.clone())
                }
            }
        }
    }

    /// One top-level rewrite, children already canonical. Every rule
    /// preserves the segment stream (walk order), size, true bounds
    /// and — checked here, since the walk's merged-run fast path keys
    /// on it — the gapless flag. lb/ub drift is fixed by the caller
    /// with a `resized` wrapper.
    fn rewrite_top(&self) -> Option<DataType> {
        let cand = self.rewrite_top_rule()?;
        if cand.size() == self.size()
            && cand.true_lb() == self.true_lb()
            && cand.true_ub() == self.true_ub()
            && cand.is_gapless() == self.is_gapless()
        {
            Some(cand)
        } else {
            None
        }
    }

    fn rewrite_top_rule(&self) -> Option<DataType> {
        match &self.node.kind {
            Kind::Primitive(_) => None,
            Kind::Resized { lb, extent, child } => {
                // Nested resized: only the outermost bounds survive.
                if let Kind::Resized { child: inner, .. } = child.kind() {
                    return DataType::resized(inner, *lb, *extent).ok();
                }
                // Extent-neutral wrapper.
                if *lb == child.lb() && *lb + *extent == child.ub() {
                    return Some(child.clone());
                }
                None
            }
            Kind::Contiguous { count: 1, child } => Some(child.clone()),
            Kind::Contiguous { count, child } => match child.kind() {
                Kind::Contiguous { count: m, child: x } => DataType::contiguous(count * m, x).ok(),
                // contiguous(n, vector) extends the vector when the
                // block pattern tiles across instances.
                Kind::Vector {
                    count: vc,
                    blocklen,
                    stride_bytes,
                    child: x,
                } if child.extent() == (*vc as i64) * *stride_bytes => {
                    DataType::hvector(count * vc, *blocklen, *stride_bytes, x).ok()
                }
                _ => None,
            },
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                if *count == 1 {
                    return DataType::contiguous(*blocklen, child).ok();
                }
                // Blocks tile the stride exactly: one contiguous run.
                if child.dense() && *stride_bytes == (*blocklen * child.size()) as i64 {
                    return DataType::contiguous(count * blocklen, child).ok();
                }
                match child.kind() {
                    // vector-of-contiguous: widen the blocks.
                    Kind::Contiguous { count: m, child: x } => {
                        DataType::hvector(*count, blocklen * m, *stride_bytes, x).ok()
                    }
                    // vector-of-vector whose outer stride steps exactly
                    // one inner pattern: flatten (negative strides
                    // included — positions are i*m*s2 + k*s2 either way).
                    Kind::Vector {
                        count: m,
                        blocklen: bl2,
                        stride_bytes: s2,
                        child: x,
                    } if *blocklen == 1 && *stride_bytes == (*m as i64) * *s2 => {
                        DataType::hvector(count * m, *bl2, *s2, x).ok()
                    }
                    _ => None,
                }
            }
            Kind::Indexed { blocks, child } => {
                let ex = child.extent();
                // Drop empty blocks; merge blocks adjacent in data
                // order (walking l1+l2 instances from d1 is the same
                // instance sequence, whatever the child).
                let mut merged: Vec<Block> = Vec::with_capacity(blocks.len());
                for &(l, d) in blocks.iter().filter(|&&(l, _)| l > 0) {
                    if let Some(last) = merged.last_mut() {
                        if d == last.1 + last.0 as i64 * ex {
                            last.0 += l;
                            continue;
                        }
                    }
                    merged.push((l, d));
                }
                if merged.is_empty() {
                    return None; // zero-size type: leave as built
                }
                if merged.len() == 1 && merged[0].1 == 0 {
                    let l = merged[0].0;
                    return if l == 1 {
                        Some(child.clone())
                    } else {
                        DataType::contiguous(l, child).ok()
                    };
                }
                // Uniform blocks at constant stride from displacement
                // zero: an hvector (identical block positions, so
                // identical walk and bounds).
                let (l0, d0) = merged[0];
                if d0 == 0 && merged.len() > 1 && merged.iter().all(|&(l, _)| l == l0) {
                    let s = merged[1].1;
                    if s != 0
                        && merged
                            .iter()
                            .enumerate()
                            .all(|(i, &(_, d))| d == i as i64 * s)
                    {
                        if let Ok(v) = DataType::hvector(merged.len() as u64, l0, s, child) {
                            return Some(v);
                        }
                    }
                }
                if merged.len() != blocks.len() {
                    let lens: Vec<u64> = merged.iter().map(|&(l, _)| l).collect();
                    let disps: Vec<i64> = merged.iter().map(|&(_, d)| d).collect();
                    return DataType::hindexed(&lens, &disps, child).ok();
                }
                None
            }
            Kind::Struct { fields } => {
                let live: Vec<&(u64, i64, DataType)> = fields
                    .iter()
                    .filter(|(l, _, t)| *l > 0 && t.size() > 0)
                    .collect();
                if live.is_empty() {
                    return None; // zero-size type: leave as built
                }
                // Homogeneous field types (one shared tree) are an
                // hindexed list — which the Indexed rules then merge.
                let first_ty = &live[0].2;
                if live
                    .iter()
                    .all(|(_, _, t)| Rc::ptr_eq(&t.node, &first_ty.node))
                {
                    let lens: Vec<u64> = live.iter().map(|(l, _, _)| *l).collect();
                    let disps: Vec<i64> = live.iter().map(|(_, d, _)| *d).collect();
                    return DataType::hindexed(&lens, &disps, first_ty).ok();
                }
                if live.len() != fields.len() {
                    let lens: Vec<u64> = live.iter().map(|(l, _, _)| *l).collect();
                    let disps: Vec<i64> = live.iter().map(|(_, d, _)| *d).collect();
                    let types: Vec<DataType> = live.iter().map(|(_, _, t)| t.clone()).collect();
                    return DataType::structure(&lens, &disps, &types).ok();
                }
                None
            }
        }
    }

    /// If every leaf of this type is the same primitive, return it.
    pub fn is_homogeneous(&self) -> Option<Primitive> {
        match &self.node.kind {
            Kind::Primitive(p) => Some(*p),
            Kind::Contiguous { child, .. }
            | Kind::Vector { child, .. }
            | Kind::Indexed { child, .. }
            | Kind::Resized { child, .. } => child.is_homogeneous(),
            Kind::Struct { fields } => {
                let mut it = fields.iter().filter(|(l, _, t)| *l > 0 && t.size() > 0);
                let first = it.next()?.2.is_homogeneous()?;
                for (_, _, t) in it {
                    if t.is_homogeneous() != Some(first) {
                        return None;
                    }
                }
                Some(first)
            }
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node.kind {
            Kind::Primitive(p) => write!(f, "{p}"),
            Kind::Contiguous { count, child } => write!(f, "contig({count}, {child})"),
            Kind::Vector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                write!(f, "hvector({count}, {blocklen}, {stride_bytes}B, {child})")
            }
            Kind::Indexed { blocks, child } => {
                write!(f, "hindexed({} blocks, {child})", blocks.len())
            }
            Kind::Struct { fields } => write!(f, "struct({} fields)", fields.len()),
            Kind::Resized { lb, extent, child } => {
                write!(f, "resized(lb={lb}, extent={extent}, {child})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl() -> DataType {
        DataType::double()
    }

    #[test]
    fn primitive_properties() {
        let d = dbl();
        assert_eq!(d.size(), 8);
        assert_eq!(d.extent(), 8);
        assert!(d.is_gapless());
        assert!(d.dense());
        assert!(d.is_contiguous(100));
    }

    #[test]
    fn layout_fingerprint_matches_across_separate_builds() {
        let build = || {
            let v = DataType::vector(4, 2, 5, &dbl()).unwrap();
            DataType::indexed(&[3, 1], &[0, 10], &v).unwrap().commit()
        };
        let a = build();
        let b = build();
        assert_ne!(a.id(), b.id(), "separately built trees have distinct ids");
        assert_eq!(a.layout_fingerprint(), b.layout_fingerprint());
    }

    #[test]
    fn layout_fingerprint_distinguishes_layouts() {
        // Same primitive signature (64 bytes), different layouts: a
        // dense vector whose blocks tile vs a plain contiguous run.
        let byte = DataType::byte();
        let vec = DataType::vector(8, 8, 16, &byte).unwrap();
        let cont = DataType::contiguous(64, &byte).unwrap();
        assert_ne!(vec.layout_fingerprint(), cont.layout_fingerprint());

        // Differing counts/strides/displacements all shift the hash.
        let v1 = DataType::vector(3, 2, 4, &dbl()).unwrap();
        let v2 = DataType::vector(3, 2, 5, &dbl()).unwrap();
        assert_ne!(v1.layout_fingerprint(), v2.layout_fingerprint());
        let r1 = DataType::resized(&v1, 0, 256).unwrap();
        let r2 = DataType::resized(&v1, 8, 256).unwrap();
        assert_ne!(r1.layout_fingerprint(), r2.layout_fingerprint());
        assert_ne!(v1.layout_fingerprint(), r1.layout_fingerprint());
    }

    #[test]
    fn layout_fingerprint_survives_dup_and_commit() {
        let t = DataType::vector(4, 1, 3, &dbl()).unwrap();
        let fp = t.layout_fingerprint();
        assert_eq!(t.dup().layout_fingerprint(), fp);
        assert_eq!(t.commit().layout_fingerprint(), fp);
    }

    #[test]
    fn contiguous_algebra() {
        let t = DataType::contiguous(10, &dbl()).unwrap();
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert!(t.dense());
        assert_eq!(t.segments(1), vec![Segment::new(0, 80)]);
        // Two counts merge into one segment.
        assert_eq!(t.segments(2), vec![Segment::new(0, 160)]);
    }

    #[test]
    fn vector_algebra() {
        // 3 blocks of 2 doubles, stride 4 doubles.
        let v = DataType::vector(3, 2, 4, &dbl()).unwrap();
        assert_eq!(v.size(), 48);
        assert_eq!(v.extent(), (2 * 4 + 2) * 8); // last block start + blocklen
        assert!(!v.is_gapless());
        assert_eq!(
            v.segments(1),
            vec![
                Segment::new(0, 16),
                Segment::new(32, 16),
                Segment::new(64, 16)
            ]
        );
    }

    #[test]
    fn vector_with_touching_blocks_is_contiguous() {
        let v = DataType::vector(4, 3, 3, &dbl()).unwrap();
        assert!(v.is_gapless());
        assert!(v.dense());
        assert_eq!(v.segments(2), vec![Segment::new(0, 192)]);
    }

    #[test]
    fn hvector_stride_in_bytes() {
        let v = DataType::hvector(2, 1, 100, &dbl()).unwrap();
        assert_eq!(
            v.segments(1),
            vec![Segment::new(0, 8), Segment::new(100, 8)]
        );
        assert_eq!(v.extent(), 108);
    }

    #[test]
    fn indexed_lower_triangle() {
        // Lower-triangular 4x4 of doubles, column-major: column c has
        // 4-c elements starting at (c*4 + c).
        let n = 4u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap();
        assert_eq!(t.size(), 8 * (4 + 3 + 2 + 1));
        assert!(!t.is_gapless());
        let segs = t.segments(1);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0], Segment::new(0, 32));
        assert_eq!(segs[1], Segment::new(40, 24));
        assert_eq!(segs[2], Segment::new(80, 16));
        assert_eq!(segs[3], Segment::new(120, 8));
    }

    #[test]
    fn indexed_adjacent_blocks_are_gapless() {
        let t = DataType::indexed(&[2, 2], &[0, 2], &dbl()).unwrap();
        assert!(t.is_gapless());
        assert_eq!(t.segments(1), vec![Segment::new(0, 32)]);
    }

    #[test]
    fn indexed_out_of_order_blocks() {
        let t = DataType::indexed(&[1, 1], &[4, 0], &dbl()).unwrap();
        // Data order follows the datatype (block 0 first), so the
        // segment at disp 32 comes first in pack order.
        assert_eq!(t.segments(1), vec![Segment::new(32, 8), Segment::new(0, 8)]);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 40);
    }

    #[test]
    fn struct_mixed_types() {
        // struct { int32 a; double b[2]; } with C layout (b at offset 8).
        let t = DataType::structure(&[1, 2], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        assert_eq!(t.size(), 4 + 16);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 24);
        assert!(!t.is_gapless()); // 4-byte hole after the int
        assert_eq!(t.segments(1), vec![Segment::new(0, 4), Segment::new(8, 16)]);
        assert!(t.is_homogeneous().is_none());
    }

    #[test]
    fn resized_changes_extent_not_data() {
        let v = DataType::vector(2, 1, 2, &dbl()).unwrap();
        assert_eq!(v.extent(), 24);
        let r = DataType::resized(&v, 0, 32).unwrap();
        assert_eq!(r.extent(), 32);
        assert_eq!(r.size(), 16);
        assert_eq!(r.true_ub(), 24);
        // Second instance starts at the resized extent.
        assert_eq!(
            r.segments(2),
            vec![
                Segment::new(0, 8),
                Segment::new(16, 8),
                Segment::new(32, 8),
                Segment::new(48, 8)
            ]
        );
    }

    #[test]
    fn negative_lb_via_resized() {
        let r = DataType::resized(&dbl(), -8, 24).unwrap();
        assert_eq!(r.lb(), -8);
        assert_eq!(r.ub(), 16);
        assert_eq!(r.true_lb(), 0);
    }

    #[test]
    fn subarray_2d_column_block() {
        // 4x4 doubles (C order), take the 4x2 block starting at column 1:
        // rows 0..4, cols 1..3.
        let t = DataType::subarray(&[4, 4], &[4, 2], &[0, 1], &dbl()).unwrap();
        assert_eq!(t.size(), 4 * 2 * 8);
        assert_eq!(t.extent(), 4 * 4 * 8);
        let segs = t.segments(1);
        assert_eq!(segs.len(), 4);
        for (r, s) in segs.iter().enumerate() {
            assert_eq!(*s, Segment::new((r as i64 * 4 + 1) * 8, 16), "row {r}");
        }
    }

    #[test]
    fn subarray_full_region_is_contiguous_run() {
        let t = DataType::subarray(&[3, 5], &[3, 5], &[0, 0], &dbl()).unwrap();
        let segs = t.segments(1);
        assert_eq!(segs, vec![Segment::new(0, 120)]);
    }

    #[test]
    fn nested_vector_of_vector() {
        // vector of vectors: inner = 2 blocks of 1 double stride 2
        // (16-byte pattern in 24-byte extent), outer strides it.
        let inner = DataType::vector(2, 1, 2, &dbl()).unwrap();
        let outer = DataType::hvector(2, 1, 48, &inner).unwrap();
        assert_eq!(outer.size(), 32);
        assert_eq!(
            outer.segments(1),
            vec![
                Segment::new(0, 8),
                Segment::new(16, 8),
                Segment::new(48, 8),
                Segment::new(64, 8)
            ]
        );
    }

    #[test]
    fn validation_errors() {
        assert!(DataType::contiguous(0, &dbl()).is_err());
        assert!(DataType::vector(0, 1, 1, &dbl()).is_err());
        assert!(DataType::indexed(&[1, 2], &[0], &dbl()).is_err());
        assert!(DataType::structure(&[1], &[0, 8], &[dbl()]).is_err());
        assert!(DataType::resized(&dbl(), 0, 0).is_err());
        assert!(DataType::subarray(&[4], &[5], &[0], &dbl()).is_err());
        assert!(DataType::subarray(&[4], &[2], &[3], &dbl()).is_err());
    }

    #[test]
    fn commit_flag() {
        let t = DataType::vector(2, 1, 2, &dbl()).unwrap();
        assert!(!t.is_committed());
        let t = t.commit();
        assert!(t.is_committed());
        // dup of a committed type stays committed.
        assert!(t.dup().is_committed());
    }

    #[test]
    fn homogeneous_detection() {
        let v = DataType::vector(3, 2, 4, &dbl()).unwrap();
        assert_eq!(v.is_homogeneous(), Some(Primitive::Float64));
        let s = DataType::structure(&[1, 1], &[0, 8], &[dbl(), dbl()]).unwrap();
        assert_eq!(s.is_homogeneous(), Some(Primitive::Float64));
    }

    #[test]
    fn segment_estimate_sane() {
        let v = DataType::vector(100, 2, 4, &dbl()).unwrap();
        assert_eq!(v.segment_estimate(), 100);
        let c = DataType::contiguous(10, &dbl()).unwrap();
        assert_eq!(c.segment_estimate(), 1);
    }

    #[test]
    fn negative_stride_hvector() {
        // Blocks walk backwards through memory (legal in MPI).
        let v = DataType::hvector(3, 1, -16, &dbl()).unwrap();
        assert_eq!(v.lb(), -32);
        assert_eq!(v.ub(), 8);
        assert_eq!(v.size(), 24);
        // Data order follows the datatype: 0, -16, -32.
        assert_eq!(
            v.segments(1),
            vec![
                Segment::new(0, 8),
                Segment::new(-16, 8),
                Segment::new(-32, 8)
            ]
        );
    }

    #[test]
    fn subarray_3d() {
        // 4x4x4 doubles, take the 2x2x2 corner at (1,1,1), C order.
        let t = DataType::subarray(&[4, 4, 4], &[2, 2, 2], &[1, 1, 1], &dbl()).unwrap();
        assert_eq!(t.size(), 8 * 8);
        assert_eq!(t.extent(), 4 * 4 * 4 * 8);
        let segs = t.segments(1);
        assert_eq!(segs.len(), 4); // 2x2 rows of 2 contiguous elements
                                   // Element (i,j,k) lives at ((i*4)+j)*4+k; first = (1,1,1) = 21.
        assert_eq!(segs[0], Segment::new(21 * 8, 16));
        assert_eq!(segs[1], Segment::new(25 * 8, 16));
        assert_eq!(segs[2], Segment::new(37 * 8, 16));
        assert_eq!(segs[3], Segment::new(41 * 8, 16));
    }

    #[test]
    fn combiner_decodes_construction() {
        let v = DataType::vector(3, 2, 4, &dbl()).unwrap();
        match v.combiner() {
            Combiner::HVector {
                count: 3,
                blocklen: 2,
                stride_bytes: 32,
                child,
            } => {
                assert!(matches!(
                    child.combiner(),
                    Combiner::Named(Primitive::Float64)
                ));
            }
            other => panic!("unexpected combiner {other:?}"),
        }
        let s = DataType::structure(&[1, 2], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        match s.combiner() {
            Combiner::Struct { fields } => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[1].0, 2);
                assert_eq!(fields[1].1, 8);
            }
            other => panic!("unexpected combiner {other:?}"),
        }
        let r = DataType::resized(&dbl(), -8, 24).unwrap();
        assert!(matches!(
            r.combiner(),
            Combiner::Resized {
                lb: -8,
                extent: 24,
                ..
            }
        ));
        let i = DataType::indexed(&[1, 2], &[0, 4], &dbl()).unwrap();
        match i.combiner() {
            Combiner::HIndexed { blocks, .. } => assert_eq!(blocks, vec![(1, 0), (2, 32)]),
            other => panic!("unexpected combiner {other:?}"),
        }
    }

    #[test]
    fn vector_shape_analysis() {
        // Dense -> single block.
        let c = DataType::contiguous(10, &dbl()).unwrap();
        assert_eq!(c.vector_shape(), Some((1, 80, 80, 0)));
        // Plain vector with dense child.
        let v = DataType::vector(4, 2, 5, &dbl()).unwrap();
        assert_eq!(v.vector_shape(), Some((4, 16, 40, 0)));
        // Uniform indexed normalizes.
        let u = DataType::indexed(&[2, 2, 2], &[0, 5, 10], &dbl()).unwrap();
        assert_eq!(u.vector_shape(), Some((3, 16, 40, 0)));
        // Irregular indexed does not.
        let t = DataType::indexed(&[2, 3], &[0, 5], &dbl()).unwrap();
        assert_eq!(t.vector_shape(), None);
        // Resized wrapper is looked through.
        let r = DataType::resized(&v, 0, 256).unwrap();
        assert_eq!(r.vector_shape(), Some((4, 16, 40, 0)));
        // contiguous(n, vector) extends when the pattern tiles.
        let tiled = DataType::vector(4, 2, 2, &dbl()).unwrap(); // dense, extent 64
        let cc = DataType::contiguous(3, &tiled).unwrap();
        assert!(cc.vector_shape().is_some());
    }

    #[test]
    fn zero_length_indexed_blocks_are_skipped() {
        let t = DataType::indexed(&[2, 0, 2], &[0, 100, 2], &dbl()).unwrap();
        assert_eq!(t.size(), 32);
        assert_eq!(t.segments(1), vec![Segment::new(0, 32)]);
        assert!(t.is_gapless());
    }

    #[test]
    fn vector_shape_negative_stride() {
        // Blocks walking backwards are still a uniform strided pattern.
        let v = DataType::hvector(3, 1, -16, &dbl()).unwrap();
        assert_eq!(v.vector_shape(), Some((3, 8, -16, 0)));
        // Negative-stride uniform indexed too.
        let i = DataType::hindexed(&[1, 1, 1], &[0, -16, -32], &dbl()).unwrap();
        assert_eq!(i.vector_shape(), Some((3, 8, -16, 0)));
    }

    #[test]
    fn vector_shape_gapless_nondense_child() {
        // A gapless child with a padded extent is one run per block
        // when blocklen is 1 — previously fell back to the generic
        // path because the child is not dense.
        let padded = DataType::resized(&dbl(), 0, 16).unwrap();
        let v = DataType::hvector(4, 1, 64, &padded).unwrap();
        assert_eq!(v.vector_shape(), Some((4, 8, 64, 0)));
        // With blocklen > 1 the gaps inside each block are real.
        let v2 = DataType::hvector(4, 2, 64, &padded).unwrap();
        assert_eq!(v2.vector_shape(), None);
        // Same for indexed over the padded child.
        let i = DataType::hindexed(&[1, 1], &[0, 40], &padded).unwrap();
        assert_eq!(i.vector_shape(), Some((2, 8, 40, 0)));
        let i2 = DataType::hindexed(&[2, 2], &[0, 40], &padded).unwrap();
        assert_eq!(i2.vector_shape(), None);
    }

    #[test]
    fn vector_shape_single_block() {
        // One indexed block away from the origin.
        let t = DataType::hindexed(&[4], &[24], &dbl()).unwrap();
        assert_eq!(t.vector_shape(), Some((1, 32, 32, 24)));
    }

    #[test]
    fn strided2d_shape_transpose() {
        // The fig12 matrix-transpose tree: hvector(n, 1, 8, vector(n, 1, n, double)).
        let n = 16u64;
        let col = DataType::vector(n, 1, n as i64, &dbl()).unwrap();
        let t = DataType::hvector(n, 1, 8, &col).unwrap();
        assert_eq!(t.vector_shape(), None);
        assert_eq!(
            t.strided2d_shape(),
            Some(Strided2D {
                outer: n,
                inner: n,
                block_bytes: 8,
                inner_stride: n as i64 * 8,
                outer_stride: 8,
                first_disp: 0,
            })
        );
    }

    #[test]
    fn strided2d_shape_contiguous_of_vector() {
        // contiguous(4, vector) whose pattern does not tile: one
        // strided row per instance, outer stride = instance extent.
        let v = DataType::vector(3, 2, 4, &dbl()).unwrap(); // extent 80, 3 blocks of 16 at stride 32
        let t = DataType::contiguous(4, &v).unwrap();
        assert_eq!(t.vector_shape(), None);
        assert_eq!(
            t.strided2d_shape(),
            Some(Strided2D {
                outer: 4,
                inner: 3,
                block_bytes: 16,
                inner_stride: 32,
                outer_stride: 80,
                first_disp: 0,
            })
        );
        // A 1-D vector shape is never reported as 2-D.
        let plain = DataType::vector(4, 2, 5, &dbl()).unwrap();
        assert_eq!(plain.strided2d_shape(), None);
    }

    /// Every canonicalization claim in one helper: identical merged
    /// segment stream (pack order), size, bounds, extent and gapless
    /// flag, and a stable (idempotent) canonical form.
    fn assert_canon_equiv(ty: &DataType) {
        let c = ty.canonical();
        assert_eq!(c.size(), ty.size(), "size for {ty}");
        assert_eq!(c.lb(), ty.lb(), "lb for {ty}");
        assert_eq!(c.ub(), ty.ub(), "ub for {ty}");
        assert_eq!(c.true_lb(), ty.true_lb(), "true_lb for {ty}");
        assert_eq!(c.true_ub(), ty.true_ub(), "true_ub for {ty}");
        assert_eq!(c.is_gapless(), ty.is_gapless(), "gapless for {ty}");
        for count in [1u64, 2, 3] {
            assert_eq!(
                c.segments(count),
                ty.segments(count),
                "segment stream for {ty} count={count}"
            );
        }
        let cc = c.canonical();
        assert_eq!(
            cc.layout_fingerprint(),
            c.layout_fingerprint(),
            "canonical not idempotent for {ty}"
        );
    }

    #[test]
    fn canonical_collapses_degenerate_wrappers() {
        let v = DataType::vector(3, 2, 4, &dbl()).unwrap();
        let fp = v.canonical().layout_fingerprint();

        // contiguous(1, v), vector(1, 1, s, v) and an extent-neutral
        // resized all canonicalize to v itself.
        let c1 = DataType::contiguous(1, &v).unwrap();
        assert_eq!(c1.canonical().layout_fingerprint(), fp);
        let v1 = DataType::hvector(1, 1, 999, &v).unwrap();
        assert_eq!(v1.canonical().layout_fingerprint(), fp);
        let r = DataType::resized(&v, v.lb(), v.extent()).unwrap();
        assert_eq!(r.canonical().layout_fingerprint(), fp);
        // Nested neutral wrappers collapse all the way down.
        let wrapped = DataType::contiguous(1, &DataType::contiguous(1, &c1).unwrap()).unwrap();
        assert_eq!(wrapped.canonical().layout_fingerprint(), fp);
        for t in [&c1, &v1, &r, &wrapped] {
            assert_canon_equiv(t);
        }
    }

    #[test]
    fn canonical_folds_contiguous_nests() {
        let a = DataType::contiguous(3, &DataType::contiguous(4, &dbl()).unwrap()).unwrap();
        let b = DataType::contiguous(12, &dbl()).unwrap();
        assert_eq!(
            a.canonical().layout_fingerprint(),
            b.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&a);
    }

    #[test]
    fn canonical_merges_vector_trees() {
        // vector-of-contiguous widens blocks.
        let voc = DataType::hvector(4, 2, 100, &DataType::contiguous(3, &dbl()).unwrap()).unwrap();
        let flat = DataType::hvector(4, 6, 100, &dbl()).unwrap();
        assert_eq!(
            voc.canonical().layout_fingerprint(),
            flat.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&voc);

        // vector-of-vector with an outer stride of exactly one inner
        // pattern flattens (also with negative strides).
        let inner = DataType::hvector(4, 1, 32, &dbl()).unwrap();
        let outer = DataType::hvector(3, 1, 128, &inner).unwrap();
        let merged = DataType::hvector(12, 1, 32, &dbl()).unwrap();
        assert_eq!(
            outer.canonical().layout_fingerprint(),
            merged.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&outer);

        let ninner = DataType::hvector(4, 1, -32, &dbl()).unwrap();
        let nouter = DataType::hvector(3, 1, -128, &ninner).unwrap();
        let nmerged = DataType::hvector(12, 1, -32, &dbl()).unwrap();
        assert_eq!(
            nouter.canonical().layout_fingerprint(),
            nmerged.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&nouter);

        // contiguous(n, vector) whose pattern tiles extends the vector.
        let tiled = DataType::vector(4, 2, 2, &dbl()).unwrap();
        let cov = DataType::contiguous(3, &tiled).unwrap();
        assert_canon_equiv(&cov);
        assert!(cov.canonical().vector_shape().is_some());
    }

    #[test]
    fn canonical_merges_indexed_blocks() {
        // Adjacent blocks merge; uniform constant-stride lists become
        // hvectors, so layout-identical constructions share one form.
        let idx = DataType::indexed(&[2, 2, 2], &[0, 5, 10], &dbl()).unwrap();
        let vec = DataType::vector(3, 2, 5, &dbl()).unwrap();
        assert_eq!(
            idx.canonical().layout_fingerprint(),
            vec.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&idx);

        let touching = DataType::indexed(&[2, 3, 1], &[0, 2, 5], &dbl()).unwrap();
        assert_canon_equiv(&touching);
        assert!(touching.canonical().is_gapless());

        // Merging must never reorder blocks (pack order is data order).
        let out_of_order = DataType::indexed(&[1, 1], &[4, 0], &dbl()).unwrap();
        assert_canon_equiv(&out_of_order);
    }

    #[test]
    fn canonical_unwraps_structs() {
        // Single-field struct at displacement zero is the field.
        let s = DataType::structure(&[3], &[0], &[dbl()]).unwrap();
        let c = DataType::contiguous(3, &dbl()).unwrap();
        assert_eq!(
            s.canonical().layout_fingerprint(),
            c.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&s);

        // Homogeneous struct fields (shared tree) become an indexed
        // list, which then merges/uniformizes.
        let t = dbl();
        let hs = DataType::structure(&[2, 2], &[0, 40], &[t.clone(), t]).unwrap();
        let idx = DataType::hindexed(&[2, 2], &[0, 40], &dbl()).unwrap();
        assert_eq!(
            hs.canonical().layout_fingerprint(),
            idx.canonical().layout_fingerprint()
        );
        assert_canon_equiv(&hs);

        // Mixed structs keep their shape (children still canonical).
        let mixed = DataType::structure(&[1, 2], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        assert_canon_equiv(&mixed);
    }

    #[test]
    fn canonical_is_memoized_and_preserves_commit() {
        let idx = DataType::indexed(&[2, 2], &[0, 5], &dbl())
            .unwrap()
            .commit();
        let a = idx.canonical();
        let b = idx.canonical();
        assert_eq!(a.id(), b.id(), "memoized canonical shares one node");
        assert!(a.is_committed(), "canonical of committed stays committed");
        let plain = DataType::contiguous(2, &dbl()).unwrap();
        assert!(!plain.canonical().is_committed());
    }

    #[test]
    fn canonical_preserves_arbitrary_trees() {
        use crate::testutil::arb_datatype;
        use simcore::rng::SimRng;
        let mut collapsed = 0u32;
        for seed in 0..200u64 {
            let mut rng = SimRng::new(0xCA40 ^ seed);
            let ty = arb_datatype(&mut rng);
            assert_canon_equiv(&ty);
            if ty.canonical().id() != ty.id() {
                collapsed += 1;
            }
        }
        // The generator produces plenty of degenerate wrappers; the
        // pass must actually fire, not just echo its input.
        assert!(collapsed >= 40, "only {collapsed}/200 trees changed");
    }
}
