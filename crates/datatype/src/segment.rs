//! Contiguous segments — the flattened view of a datatype.

/// One maximal contiguous run of real data within a typed buffer:
/// `len` bytes starting `disp` bytes from the buffer origin. `disp` is
/// signed because MPI lower bounds may be negative.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Segment {
    pub disp: i64,
    pub len: u64,
}

impl Segment {
    pub fn new(disp: i64, len: u64) -> Self {
        Segment { disp, len }
    }

    /// End displacement (one past the last byte).
    pub fn end(self) -> i64 {
        self.disp + self.len as i64
    }
}

/// Accumulates segments, merging runs that turn out to be adjacent (the
/// convertor and DEV generator both want maximal segments so, e.g., a
/// `contiguous(vector)` composition doesn't shatter into needless
/// pieces).
#[derive(Default)]
pub struct SegmentSink {
    pending: Option<Segment>,
    out: Vec<Segment>,
}

impl SegmentSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, disp: i64, len: u64) {
        if len == 0 {
            return;
        }
        match &mut self.pending {
            Some(p) if p.end() == disp => p.len += len,
            Some(p) => {
                self.out.push(*p);
                self.pending = Some(Segment::new(disp, len));
            }
            None => self.pending = Some(Segment::new(disp, len)),
        }
    }

    pub fn finish(mut self) -> Vec<Segment> {
        if let Some(p) = self.pending.take() {
            self.out.push(p);
        }
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_adjacent_runs() {
        let mut s = SegmentSink::new();
        s.push(0, 4);
        s.push(4, 4);
        s.push(16, 8);
        s.push(24, 8);
        s.push(40, 8);
        let v = s.finish();
        assert_eq!(
            v,
            vec![
                Segment::new(0, 8),
                Segment::new(16, 16),
                Segment::new(40, 8)
            ]
        );
    }

    #[test]
    fn skips_empty_runs() {
        let mut s = SegmentSink::new();
        s.push(0, 0);
        s.push(8, 4);
        s.push(12, 0);
        s.push(12, 4);
        assert_eq!(s.finish(), vec![Segment::new(8, 8)]);
    }

    #[test]
    fn negative_displacements() {
        let mut s = SegmentSink::new();
        s.push(-16, 8);
        s.push(-8, 8);
        let v = s.finish();
        assert_eq!(v, vec![Segment::new(-16, 16)]);
        assert_eq!(v[0].end(), 0);
    }
}
