//! The MPI derived-datatype (DDT) engine — CPU side.
//!
//! This is a from-scratch reimplementation of the datatype machinery the
//! paper builds on: the full set of MPI type combiners, the size /
//! extent / lower-bound algebra, type signatures for matching, and —
//! most importantly — Open MPI's *stack-based convertor*, which walks a
//! committed datatype as a stream of contiguous segments and supports
//! suspending/resuming at an arbitrary byte position (the mechanism that
//! makes fragment-by-fragment pipelined pack/unpack possible).
//!
//! Layering: this crate knows nothing about GPUs or virtual time. The
//! GPU engine (`devengine`) converts the same committed types into DEV
//! work-unit lists; `mpirt` uses the convertor both as the host-side
//! engine and as the correctness reference for every GPU path.

pub mod convertor;
pub mod error;
pub mod primitive;
pub mod segment;
pub mod signature;
pub mod testutil;
pub mod typ;

pub use convertor::{Convertor, PackKind};
pub use error::TypeError;
pub use primitive::Primitive;
pub use segment::Segment;
pub use signature::Signature;
pub use typ::{Combiner, DataType, Strided2D};
