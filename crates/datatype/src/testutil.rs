//! Shared test helpers: buffer sizing for arbitrary datatypes, the
//! reference pack, and seeded generators for random datatype trees.
//!
//! This module is part of the public API (not `cfg(test)`) because the
//! GPU engine, runtime and integration tests all reuse the same
//! generators to cross-validate their pack/unpack paths against the CPU
//! convertor.

use crate::convertor::pack_all;
use crate::typ::DataType;
use simcore::rng::SimRng;

/// The slice geometry needed to hold `count` instances of `ty`:
/// `(base, len)` such that every data byte lands inside `0..len` when
/// displacement 0 maps to index `base`.
pub fn buffer_span(ty: &DataType, count: u64) -> (i64, usize) {
    if count == 0 || ty.size() == 0 {
        return (0, 0);
    }
    let ext = ty.extent();
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for i in [0, count - 1] {
        let b = i as i64 * ext;
        lo = lo.min(b + ty.true_lb());
        hi = hi.max(b + ty.true_ub());
    }
    // Negative extents cannot occur (ub >= lb by construction), but
    // guard anyway.
    let base = if lo < 0 { -lo } else { 0 };
    (base, (base + hi) as usize)
}

/// Reference pack: materialize segments and copy — the simplest possible
/// correct implementation, used as the oracle for every other engine.
pub fn reference_pack(ty: &DataType, count: u64, typed: &[u8], base: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity((ty.size() * count) as usize);
    for s in ty.segments(count) {
        let idx = (base + s.disp) as usize;
        out.extend_from_slice(&typed[idx..idx + s.len as usize]);
    }
    out
}

/// Reference unpack (scatter) into `typed`.
pub fn reference_unpack(ty: &DataType, count: u64, typed: &mut [u8], base: i64, packed: &[u8]) {
    let mut pos = 0usize;
    for s in ty.segments(count) {
        let idx = (base + s.disp) as usize;
        typed[idx..idx + s.len as usize].copy_from_slice(&packed[pos..pos + s.len as usize]);
        pos += s.len as usize;
    }
    assert_eq!(pos, packed.len());
}

/// Fill a buffer with a position-encoding non-zero pattern.
pub fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 131 + 17) % 255 + 1) as u8).collect()
}

/// Verify that `ty` survives a CPU pack→unpack round trip; panics with
/// context on failure. Returns the packed bytes for further checks.
pub fn assert_roundtrip(ty: &DataType, count: u64) -> Vec<u8> {
    let ty = ty.clone().commit();
    let (base, len) = buffer_span(&ty, count);
    let typed = pattern(len);
    let packed = pack_all(&ty, count, &typed, base);
    assert_eq!(
        packed.len() as u64,
        ty.size() * count,
        "packed size for {ty}"
    );
    assert_eq!(
        packed,
        reference_pack(&ty, count, &typed, base),
        "pack order for {ty}"
    );

    let mut out = vec![0u8; len];
    crate::convertor::unpack_all(&ty, count, &mut out, base, &packed);
    for s in ty.segments(count) {
        let r = (base + s.disp) as usize..(base + s.disp) as usize + s.len as usize;
        assert_eq!(&out[r.clone()], &typed[r], "roundtrip bytes for {ty}");
    }
    packed
}

/// Seeded generator: a random primitive.
pub fn arb_primitive(r: &mut SimRng) -> crate::Primitive {
    *r.choose(&crate::Primitive::ALL)
}

/// Seeded generator: a random datatype tree of bounded depth. Sizes are
/// kept small enough that exhaustive byte-level checking stays fast.
/// Deterministic in the generator state, so failures reproduce from the
/// loop seed.
pub fn arb_datatype(r: &mut SimRng) -> DataType {
    arb_datatype_depth(r, 3)
}

fn arb_datatype_depth(r: &mut SimRng, depth: u32) -> DataType {
    if depth == 0 || r.range(0, 4) == 0 {
        return DataType::primitive(arb_primitive(r));
    }
    match r.range(0, 6) {
        // contiguous
        0 => {
            let n = r.range_u64(1, 5);
            let t = arb_datatype_depth(r, depth - 1);
            DataType::contiguous(n, &t).unwrap()
        }
        // vector (element stride, possibly overlapping-free gap)
        1 => {
            let c = r.range_u64(1, 4);
            let b = r.range_u64(1, 4);
            let gap = r.range_u64(0, 4) as i64;
            let t = arb_datatype_depth(r, depth - 1);
            DataType::vector(c, b, b as i64 + gap, &t).unwrap()
        }
        // hvector with byte stride rounded up past the block span
        2 => {
            let c = r.range_u64(1, 4);
            let b = r.range_u64(1, 3);
            let gap = r.range_u64(0, 32) as i64;
            let t = arb_datatype_depth(r, depth - 1);
            let span = b as i64 * t.extent().max(1);
            DataType::hvector(c, b, span + gap, &t).unwrap()
        }
        // indexed with increasing displacements
        3 => {
            let nblocks = r.range(1, 4);
            let blocks: Vec<(u64, i64)> = (0..nblocks)
                .map(|_| (r.range_u64(1, 3), r.range_u64(0, 4) as i64))
                .collect();
            let t = arb_datatype_depth(r, depth - 1);
            let mut disp = 0i64;
            let mut lens = Vec::new();
            let mut disps = Vec::new();
            for (l, gap) in blocks {
                lens.push(l);
                disps.push(disp);
                disp += l as i64 + gap;
            }
            DataType::indexed(&lens, &disps, &t).unwrap()
        }
        // struct of two fields laid out back to back with a gap
        4 => {
            let gap = r.range_u64(0, 16) as i64;
            let a = arb_datatype_depth(r, depth - 1);
            let b = arb_datatype_depth(r, depth - 1);
            let d1 = a.ub().max(a.true_ub()) + gap;
            DataType::structure(&[1, 1], &[0, d1 - b.lb().min(0)], &[a, b]).unwrap()
        }
        // resized (extent >= span so repetitions do not overlap)
        _ => {
            let pad = r.range_u64(0, 16) as i64;
            let t = arb_datatype_depth(r, depth - 1);
            let span = (t.true_ub() - t.true_lb().min(0)).max(1);
            DataType::resized(&t, t.lb().min(0), span + pad).unwrap()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_span_covers_segments() {
        let v = DataType::vector(3, 2, 4, &DataType::double()).unwrap();
        let (base, len) = buffer_span(&v, 2);
        for s in v.segments(2) {
            assert!(base + s.disp >= 0);
            assert!((base + s.end()) as usize <= len);
        }
    }

    #[test]
    fn buffer_span_handles_negative_lb() {
        let r = DataType::resized(&DataType::double(), -8, 16).unwrap();
        let t = DataType::hindexed(&[1, 1], &[-24, 0], &r).unwrap();
        let (base, len) = buffer_span(&t, 1);
        assert!(base >= 24);
        for s in t.segments(1) {
            assert!(base + s.disp >= 0);
            assert!((base + s.end()) as usize <= len);
        }
    }

    #[test]
    fn roundtrip_smoke() {
        let t = DataType::indexed(&[3, 1], &[0, 5], &DataType::double()).unwrap();
        assert_roundtrip(&t, 3);
    }

    #[test]
    fn random_types_roundtrip() {
        let mut r = SimRng::new(0x5eed_0001);
        for _ in 0..128 {
            let ty = arb_datatype(&mut r);
            let count = r.range_u64(1, 4);
            assert_roundtrip(&ty, count);
        }
    }

    #[test]
    fn random_types_signature_reflexive() {
        let mut r = SimRng::new(0x5eed_0002);
        for _ in 0..128 {
            let ty = arb_datatype(&mut r);
            let count = r.range_u64(1, 4);
            let s = crate::Signature::of(&ty, count);
            assert!(s.matches(&crate::Signature::of(&ty, count)));
            assert_eq!(s.byte_count(), ty.size() * count);
        }
    }

    #[test]
    fn random_types_segments_conserve_bytes() {
        let mut r = SimRng::new(0x5eed_0003);
        for _ in 0..128 {
            let ty = arb_datatype(&mut r);
            let count = r.range_u64(1, 4);
            let total: u64 = ty.segments(count).iter().map(|s| s.len).sum();
            assert_eq!(total, ty.size() * count);
        }
    }

    #[test]
    fn random_types_segments_do_not_overlap() {
        let mut r = SimRng::new(0x5eed_0004);
        for _ in 0..128 {
            let ty = arb_datatype(&mut r);
            let count = r.range_u64(1, 3);
            let mut segs = ty.segments(count);
            segs.sort_by_key(|s| s.disp);
            for w in segs.windows(2) {
                assert!(
                    w[0].end() <= w[1].disp,
                    "overlap between {:?} and {:?} in {}",
                    w[0],
                    w[1],
                    ty
                );
            }
        }
    }
}
