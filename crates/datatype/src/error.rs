//! Datatype construction and usage errors.

use std::fmt;

/// Errors raised while constructing or using derived datatypes. These
/// correspond to the MPI error classes a real implementation returns
/// (`MPI_ERR_TYPE`, `MPI_ERR_ARG`, `MPI_ERR_TRUNCATE`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A count/blocklength argument was invalid (e.g. negative in MPI
    /// terms; here, a zero where it is not allowed).
    InvalidArgument(&'static str),
    /// An indexed constructor received mismatched array lengths.
    LengthMismatch {
        lengths: usize,
        displacements: usize,
    },
    /// The datatype was used before `commit()`.
    NotCommitted,
    /// Send and receive type signatures do not match.
    SignatureMismatch,
    /// The receive buffer described fewer bytes than the incoming
    /// message (MPI_ERR_TRUNCATE).
    Truncated { incoming: u64, capacity: u64 },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            TypeError::LengthMismatch { lengths, displacements } => write!(
                f,
                "indexed arrays differ in length: {lengths} lengths vs {displacements} displacements"
            ),
            TypeError::NotCommitted => write!(f, "datatype used before commit"),
            TypeError::SignatureMismatch => write!(f, "type signatures do not match"),
            TypeError::Truncated { incoming, capacity } => {
                write!(f, "message truncated: {incoming} bytes into {capacity}-byte type")
            }
        }
    }
}

impl std::error::Error for TypeError {}
