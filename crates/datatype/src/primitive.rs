//! Predefined (primitive) MPI datatypes.

use std::fmt;

/// The predefined MPI datatypes this engine supports. Sizes follow the
/// usual LP64 C ABI the paper's platforms used.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Primitive {
    /// MPI_BYTE / MPI_CHAR (1 byte)
    Byte,
    /// MPI_SHORT (2 bytes)
    Int16,
    /// MPI_INT (4 bytes)
    Int32,
    /// MPI_LONG / MPI_LONG_LONG (8 bytes)
    Int64,
    /// MPI_FLOAT (4 bytes)
    Float32,
    /// MPI_DOUBLE (8 bytes)
    Float64,
    /// MPI_C_DOUBLE_COMPLEX (16 bytes)
    Complex128,
}

impl Primitive {
    /// Size in bytes.
    pub const fn size(self) -> u64 {
        match self {
            Primitive::Byte => 1,
            Primitive::Int16 => 2,
            Primitive::Int32 | Primitive::Float32 => 4,
            Primitive::Int64 | Primitive::Float64 => 8,
            Primitive::Complex128 => 16,
        }
    }

    /// Natural alignment in bytes (equal to size for these types, capped
    /// at 8 which is the maximum the target ABIs require).
    pub const fn alignment(self) -> u64 {
        let s = self.size();
        if s > 8 {
            8
        } else {
            s
        }
    }

    /// Stable small integer identifying this primitive, used as a hash
    /// discriminant in [`crate::DataType::layout_fingerprint`]. Must not
    /// change between releases or cached fingerprints would shift.
    pub const fn code(self) -> u64 {
        match self {
            Primitive::Byte => 0,
            Primitive::Int16 => 1,
            Primitive::Int32 => 2,
            Primitive::Int64 => 3,
            Primitive::Float32 => 4,
            Primitive::Float64 => 5,
            Primitive::Complex128 => 6,
        }
    }

    /// All primitives, for property-based generators.
    pub const ALL: [Primitive; 7] = [
        Primitive::Byte,
        Primitive::Int16,
        Primitive::Int32,
        Primitive::Int64,
        Primitive::Float32,
        Primitive::Float64,
        Primitive::Complex128,
    ];
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Primitive::Byte => "MPI_BYTE",
            Primitive::Int16 => "MPI_SHORT",
            Primitive::Int32 => "MPI_INT",
            Primitive::Int64 => "MPI_LONG",
            Primitive::Float32 => "MPI_FLOAT",
            Primitive::Float64 => "MPI_DOUBLE",
            Primitive::Complex128 => "MPI_C_DOUBLE_COMPLEX",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        assert_eq!(Primitive::Byte.size(), 1);
        assert_eq!(Primitive::Float64.size(), 8);
        assert_eq!(Primitive::Complex128.size(), 16);
        assert_eq!(Primitive::Complex128.alignment(), 8);
        for p in Primitive::ALL {
            assert!(p.alignment() <= p.size());
            assert!(p.size() % p.alignment() == 0);
        }
    }
}
