//! Property test: the three unit sources — streaming conversion
//! (`Fresh`), cached-plan slicing (`Cached`) and arithmetic generation
//! for vector-shaped types (`Vector`) — describe the *same byte
//! movement* for any committed datatype at any fragment size. The
//! fragment engine picks between them purely on cost grounds; this
//! pins down that the choice can never change what gets copied.
//!
//! Units differ per source (unit-size splits, fragment-boundary splits,
//! whole-block vector ops), so coverage is compared as the multiset of
//! `(src_off, dst_off, len)` after merging ops that are adjacent on
//! both sides — the normalized form is the canonical byte mapping.

use datatype::testutil::arb_datatype;
use datatype::DataType;
use devengine::{build_plan, build_plan_opt, DevCursor};
use simcore::par::CopyOp;
use simcore::rng::SimRng;

/// Canonical byte mapping: sort by packed offset, drop empties, merge
/// runs contiguous on both the typed and the packed side.
fn normalize(mut ops: Vec<CopyOp>) -> Vec<(usize, usize, usize)> {
    ops.sort_by_key(|u| u.dst_off);
    let mut out: Vec<(usize, usize, usize)> = Vec::new();
    for u in ops {
        if u.len == 0 {
            continue;
        }
        if let Some(last) = out.last_mut() {
            if last.0 + last.2 == u.src_off && last.1 + last.2 == u.dst_off {
                last.2 += u.len;
                continue;
            }
        }
        out.push((u.src_off, u.dst_off, u.len));
    }
    out
}

/// `Fresh`: stream units fragment by fragment through the convertor.
fn fresh_units(ty: &DataType, count: u64, unit_size: u64, frag: u64) -> Vec<CopyOp> {
    let mut cur = DevCursor::new(ty, count, unit_size).unwrap();
    let mut ops = Vec::new();
    while !cur.finished() {
        ops.extend(cur.next_units(frag));
    }
    ops
}

/// `Cached`: materialize the plan once, then slice the same fragment
/// windows through the production `slice_into` path (which rebases
/// packed offsets per fragment — undo that to compare absolutes).
fn cached_units(ty: &DataType, count: u64, unit_size: u64, frag: u64) -> Vec<CopyOp> {
    let plan = build_plan(ty, count, unit_size).unwrap();
    let mut ops = Vec::new();
    let mut buf = Vec::new();
    let mut pos = 0u64;
    while pos < plan.total_bytes {
        let to = (pos + frag).min(plan.total_bytes);
        plan.slice_into(pos, to, &mut buf);
        for u in &buf {
            ops.push(CopyOp {
                src_off: u.src_off,
                dst_off: u.dst_off + pos as usize,
                len: u.len,
            });
        }
        pos = to;
    }
    ops
}

/// `Vector`: arithmetic unit generation, exactly as the fragment
/// engine's specialized path computes it (no descriptors at all).
fn vector_units(ty: &DataType, count: u64, frag: u64) -> Option<Vec<CopyOp>> {
    let effective = if count <= 1 {
        ty.clone()
    } else {
        DataType::contiguous(count, ty).unwrap().commit()
    };
    let (_, block_bytes, stride, first_disp) = effective.vector_shape()?;
    let base_shift = ty.true_lb().min(0);
    let total = ty.size() * count;
    let mut ops = Vec::new();
    let mut pos = 0u64;
    while pos < total {
        let to = (pos + frag).min(total);
        let mut p = pos;
        while p < to {
            let block = p / block_bytes;
            let intra = p % block_bytes;
            let take = (block_bytes - intra).min(to - p);
            let disp = first_disp + block as i64 * stride + intra as i64;
            ops.push(CopyOp {
                src_off: (disp - base_shift) as usize,
                dst_off: p as usize,
                len: take as usize,
            });
            p += take;
        }
        pos = to;
    }
    Some(ops)
}

/// `Strided2D`: the doubly-strided arithmetic path, exactly as the
/// fragment engine's specialized kernel computes it.
fn strided2d_units(ty: &DataType, count: u64, frag: u64) -> Option<Vec<CopyOp>> {
    let effective = if count <= 1 {
        ty.clone()
    } else {
        DataType::contiguous(count, ty).unwrap().commit()
    };
    let shape = effective.strided2d_shape()?;
    let base_shift = ty.true_lb().min(0);
    let total = ty.size() * count;
    let mut ops = Vec::new();
    let mut pos = 0u64;
    while pos < total {
        let to = (pos + frag).min(total);
        let mut p = pos;
        while p < to {
            let block = p / shape.block_bytes;
            let intra = p % shape.block_bytes;
            let take = (shape.block_bytes - intra).min(to - p);
            let i = (block / shape.inner) as i64;
            let j = (block % shape.inner) as i64;
            let disp =
                shape.first_disp + i * shape.outer_stride + j * shape.inner_stride + intra as i64;
            ops.push(CopyOp {
                src_off: (disp - base_shift) as usize,
                dst_off: p as usize,
                len: take as usize,
            });
            p += take;
        }
        pos = to;
    }
    Some(ops)
}

/// Optimizer-transformed plan (canonicalization and/or coalescing),
/// sliced fragment by fragment like the cached source does.
fn optimized_units(
    ty: &DataType,
    count: u64,
    unit_size: u64,
    frag: u64,
    canonicalize: bool,
    coalesce: bool,
) -> Vec<CopyOp> {
    let work = if canonicalize {
        ty.canonical()
    } else {
        ty.clone()
    };
    let plan = build_plan_opt(&work, count, unit_size, coalesce).unwrap();
    let mut ops = Vec::new();
    let mut buf = Vec::new();
    let mut pos = 0u64;
    while pos < plan.total_bytes {
        let to = (pos + frag).min(plan.total_bytes);
        plan.slice_into(pos, to, &mut buf);
        for u in &buf {
            ops.push(CopyOp {
                src_off: u.src_off,
                dst_off: u.dst_off + pos as usize,
                len: u.len,
            });
        }
        pos = to;
    }
    ops
}

fn check(ty: &DataType, count: u64, seed_note: &str) {
    let total = ty.size() * count;
    for unit_size in [8u64, 64, 1024] {
        // Fragment sizes straddle unit, block and total boundaries.
        for frag in [1u64, 7, 64, total.max(1).div_ceil(3), u64::MAX] {
            let fresh = normalize(fresh_units(ty, count, unit_size, frag));
            let cached = normalize(cached_units(ty, count, unit_size, frag));
            assert_eq!(
                fresh, cached,
                "{seed_note}: fresh vs cached, count={count} unit={unit_size} frag={frag}"
            );
            if let Some(vec_ops) = vector_units(ty, count, frag) {
                assert_eq!(
                    fresh,
                    normalize(vec_ops),
                    "{seed_note}: fresh vs vector, count={count} frag={frag}"
                );
            }
            let covered: usize = fresh.iter().map(|&(_, _, l)| l).sum();
            assert_eq!(covered as u64, total, "{seed_note}: bytes covered");

            // Every optimizer toggle combination must describe the same
            // byte mapping as the unoptimized plan: the passes reshape
            // units (fewer descriptors, merged runs), never the bytes.
            for canon in [false, true] {
                for coalesce in [false, true] {
                    let opt =
                        normalize(optimized_units(ty, count, unit_size, frag, canon, coalesce));
                    assert_eq!(
                        fresh, opt,
                        "{seed_note}: fresh vs optimized(canon={canon}, \
                         coalesce={coalesce}), count={count} unit={unit_size} frag={frag}"
                    );
                }
            }
            if let Some(s2d) = strided2d_units(ty, count, frag) {
                assert_eq!(
                    fresh,
                    normalize(s2d),
                    "{seed_note}: fresh vs strided2d, count={count} frag={frag}"
                );
            }
        }
    }
}

#[test]
fn all_sources_agree_on_arbitrary_types() {
    let mut vector_shaped = 0u32;
    for seed in 0..120u64 {
        let mut rng = SimRng::new(0xDD7 ^ seed);
        let ty = arb_datatype(&mut rng).commit();
        if ty.vector_shape().is_some() {
            vector_shaped += 1;
        }
        for count in [1u64, 2] {
            check(&ty, count, &format!("seed {seed}"));
        }
    }
    // The generator must actually exercise the specialized path, not
    // just the two descriptor-based sources.
    assert!(
        vector_shaped >= 10,
        "only {vector_shaped} vector-shaped types out of 120"
    );
}

#[test]
fn sources_agree_on_the_paper_workloads() {
    // Triangular (indexed) and submatrix (vector) shapes from the
    // figures, small enough for the exhaustive fragment sweep.
    let lens: Vec<u64> = (0..24u64).map(|c| 24 - c).collect();
    let disps: Vec<i64> = (0..24i64).map(|c| c * 24 + c).collect();
    let tri = DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit();
    check(&tri, 1, "triangular");
    let sub = DataType::vector(16, 16, 32, &DataType::double())
        .unwrap()
        .commit();
    check(&sub, 1, "submatrix");
    check(&sub, 2, "submatrix x2");
    // Matrix transpose (fig12): a doubly-strided tree that must hit the
    // arithmetic Strided2D source, not just agree on descriptors.
    let n = 24u64;
    let col = DataType::vector(n, 1, n as i64, &DataType::double()).unwrap();
    let transpose = DataType::hvector(n, 1, 8, &col).unwrap().commit();
    assert!(
        transpose.strided2d_shape().is_some(),
        "transpose must be strided2d-shaped"
    );
    check(&transpose, 1, "transpose");
}
