//! The analytic auto-tuner: evaluates the gpusim/netsim cost model in
//! closed form (no simulation runs) to pick work-unit size, pipeline
//! granularity, fragment size and ring depth per datatype layout.
//!
//! The model is deliberately the same arithmetic the simulator charges —
//! fixed per-stage overheads (kernel launch, preparation call, message
//! latency) plus a per-byte rate per stage — folded into a bounded-buffer
//! pipeline makespan. Every picker includes the static default among its
//! candidates and only deviates when the model predicts a win beyond a
//! safety margin, so a tuned run is never *predicted* worse than the
//! default; the `ablation_optimizer` bench asserts the simulated times
//! agree.

/// One pipeline stage: `fixed_ns + ns_per_byte * bytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stage {
    pub fixed_ns: f64,
    pub ns_per_byte: f64,
}

impl Stage {
    pub fn time_ns(&self, bytes: u64) -> f64 {
        self.fixed_ns + self.ns_per_byte * bytes as f64
    }
}

/// Makespan estimate for `total` bytes moved through `stages` in
/// fragments of `frag` bytes with at most `depth` fragments in flight:
/// the first fragment fills the whole pipe, every further fragment costs
/// the bottleneck stage (or the fill time divided by the ring depth when
/// the ring is what limits overlap). The last fragment is charged at its
/// *actual* size — billing the tail as a full round systematically
/// overprices large fragments and makes shrinking look profitable when
/// it isn't.
pub fn pipeline_makespan_ns(total: u64, frag: u64, depth: usize, stages: &[Stage]) -> f64 {
    assert!(frag > 0 && depth > 0, "degenerate pipeline shape");
    let total = total.max(1);
    let first = frag.min(total);
    let nf = total.div_ceil(first);
    let fill = |b: u64| stages.iter().map(|s| s.time_ns(b)).sum::<f64>();
    let per_round = |b: u64| {
        let bottleneck = stages.iter().map(|s| s.time_ns(b)).fold(0.0f64, f64::max);
        bottleneck.max(fill(b) / depth as f64)
    };
    let tail = total - (nf - 1) * first;
    let mut cost = fill(first);
    if nf >= 2 {
        cost += (nf - 2) as f64 * per_round(first) + per_round(tail);
    }
    cost
}

/// Work-unit candidates from §3.2 (the paper sweeps S ∈ {1, 2, 4} KB).
pub const UNIT_CANDIDATES: [u64; 3] = [1024, 2048, 4096];

/// Pick the work-unit size S for the generic DEV path: cost per unit is
/// the CPU preparation charge plus the 32-byte descriptor each unit
/// streams from DRAM, and a layout with `segments` contiguous runs
/// totalling `total` bytes shatters into about `segments + total / S`
/// units. The static `base` is always a candidate and wins ties.
pub fn pick_unit_size(
    base: u64,
    total: u64,
    segments: u64,
    prep_per_unit_ns: f64,
    desc_ns_per_unit: f64,
) -> u64 {
    let units = |s: u64| segments as f64 + total as f64 / s.max(1) as f64;
    let cost = |s: u64| units(s) * (prep_per_unit_ns + desc_ns_per_unit);
    let mut best = base;
    let mut best_cost = cost(base);
    for cand in UNIT_CANDIDATES {
        let c = cost(cand);
        if c < best_cost {
            best_cost = c;
            best = cand;
        }
    }
    best
}

/// Inputs to the engine-level pipeline-granularity decision.
#[derive(Clone, Copy, Debug)]
pub struct ChunkModel {
    /// Total packed bytes of the job.
    pub total: u64,
    /// Estimated work units per packed byte (layout shatter factor).
    pub units_per_byte: f64,
    /// Fixed CPU cost per preparation batch.
    pub prep_call_ns: f64,
    /// CPU cost per work unit prepared.
    pub prep_per_unit_ns: f64,
    /// Kernel launch overhead.
    pub launch_ns: f64,
    /// Kernel time per payload byte (traffic factor over effective
    /// bandwidth, descriptors included).
    pub kernel_ns_per_byte: f64,
}

/// Only deviate from the default when the model predicts at least this
/// much improvement (guards against model/simulator disagreement).
const CHUNK_MARGIN: f64 = 0.97;

/// Pick the CPU→kernel pipeline chunk for a streaming (Fresh) job. With
/// cheap preparation the per-chunk kernel launch dominates and a single
/// launch wins; with expensive preparation overlapping chunks win — the
/// two-stage makespan model decides, with the configured default always
/// a candidate.
pub fn pick_pipeline_chunk(m: &ChunkModel, default_chunk: u64) -> u64 {
    let model = |chunk: u64| -> f64 {
        let stages = [
            Stage {
                fixed_ns: m.prep_call_ns,
                ns_per_byte: m.prep_per_unit_ns * m.units_per_byte,
            },
            Stage {
                fixed_ns: m.launch_ns,
                ns_per_byte: m.kernel_ns_per_byte,
            },
        ];
        // Depth 2: the CPU prepares one chunk ahead of the kernel.
        pipeline_makespan_ns(m.total, chunk, 2, &stages)
    };
    let default_cost = model(default_chunk);
    let mut best = default_chunk;
    let mut best_cost = default_cost;
    for cand in [
        default_chunk.saturating_mul(2),
        default_chunk.saturating_mul(4),
        u64::MAX,
    ] {
        let c = model(cand);
        if c < best_cost {
            best_cost = c;
            best = cand;
        }
    }
    if best_cost < default_cost * CHUNK_MARGIN {
        best
    } else {
        default_chunk
    }
}

/// Only deviate from the configured fragment/depth when the model
/// predicts at least a 7% win.
const FRAG_MARGIN: f64 = 0.93;

/// Never tune a transport fragment below this (rendezvous bookkeeping
/// per fragment stops amortizing).
pub const MIN_FRAG: u64 = 64 << 10;

/// Pick the transport fragment size and ring depth for a pipelined
/// protocol whose per-fragment stages are `stages`. Candidates shrink
/// the configured fragment (the ring slots are allocated at `frag0`
/// bytes, so a tuned fragment must never exceed it) and may halve the
/// ring depth; `(frag0, depth0)` always competes and wins ties.
pub fn pick_fragment(total: u64, frag0: u64, depth0: usize, stages: &[Stage]) -> (u64, usize) {
    let depth0 = depth0.max(1);
    // Below three fragments at the configured size the pipeline never
    // reaches a steady state and the makespan model systematically
    // overvalues the shorter fill ramp of small fragments; splitting a
    // message that barely fragments only adds per-fragment overhead.
    if total.div_ceil(frag0.max(1)) < 3 {
        return (frag0, depth0);
    }
    let default_cost = pipeline_makespan_ns(total, frag0, depth0, stages);
    let mut best = (frag0, depth0);
    let mut best_cost = default_cost;
    for shift in [1u32, 2] {
        let f = (frag0 >> shift) & !255;
        if f < MIN_FRAG || f == 0 {
            continue;
        }
        for d in [depth0, (depth0 / 2).max(1)] {
            let c = pipeline_makespan_ns(total, f, d, stages);
            if c < best_cost {
                best_cost = c;
                best = (f, d);
            }
        }
    }
    if best_cost < default_cost * FRAG_MARGIN {
        best
    } else {
        (frag0, depth0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_reduces_to_serial_for_one_fragment() {
        let stages = [
            Stage {
                fixed_ns: 1000.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 6000.0,
                ns_per_byte: 0.5,
            },
        ];
        let total = 1 << 20;
        let serial = pipeline_makespan_ns(total, u64::MAX, 2, &stages);
        let expect: f64 = stages.iter().map(|s| s.time_ns(total)).sum();
        assert!((serial - expect).abs() < 1e-6);
    }

    #[test]
    fn makespan_pipelining_approaches_bottleneck() {
        let stages = [
            Stage {
                fixed_ns: 0.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 0.0,
                ns_per_byte: 1.0,
            },
        ];
        let total = 1u64 << 20;
        let piped = pipeline_makespan_ns(total, 1 << 14, 4, &stages);
        // 64 fragments: ~total * 1 ns/B bottleneck, not 2x (the serial sum).
        assert!(piped < 1.2 * total as f64);
        assert!(piped >= total as f64);
    }

    #[test]
    fn unit_size_prefers_fewer_units() {
        // Monotone model: the largest candidate wins for any shattered
        // layout; an explicitly larger base survives as the incumbent.
        assert_eq!(pick_unit_size(1024, 1 << 20, 1000, 12.0, 0.1), 4096);
        assert_eq!(pick_unit_size(8192, 1 << 20, 1000, 12.0, 0.1), 8192);
    }

    #[test]
    fn chunk_collapses_to_single_kernel_when_prep_is_cheap() {
        // Coalesced triangular: ~2k units over 17 MB, launch 6 us.
        let m = ChunkModel {
            total: 17 << 20,
            units_per_byte: 2048.0 / (17 << 20) as f64,
            prep_call_ns: 1000.0,
            prep_per_unit_ns: 12.0,
            launch_ns: 6000.0,
            kernel_ns_per_byte: 2.0 / 338.0, // ~2B traffic/B at ~338 GB/s
        };
        assert_eq!(pick_pipeline_chunk(&m, 1 << 20), u64::MAX);
    }

    #[test]
    fn chunk_keeps_pipelining_when_prep_dominates() {
        // Unsplit 1 KB units: ~17k units of prep vs ~100 us of kernel.
        let m = ChunkModel {
            total: 17 << 20,
            units_per_byte: 1.0 / 1024.0,
            prep_call_ns: 1000.0,
            prep_per_unit_ns: 12.0,
            launch_ns: 6000.0,
            kernel_ns_per_byte: 2.0 / 338.0,
        };
        assert_eq!(pick_pipeline_chunk(&m, 1 << 20), 1 << 20);
    }

    #[test]
    fn fragment_default_always_competes() {
        // A pipe dominated by per-fragment fixed cost: shrinking can
        // only hurt, the default must survive.
        let stages = [Stage {
            fixed_ns: 100_000.0,
            ns_per_byte: 0.01,
        }];
        let (f, d) = pick_fragment(8 << 20, 512 << 10, 4, &stages);
        assert_eq!((f, d), (512 << 10, 4));
    }

    #[test]
    fn fragment_shrinks_when_fill_dominates() {
        // Four fragments of a 2 MB message through a deep per-byte pipe:
        // halving the fragment shortens the fill ramp.
        let stages = [
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
        ];
        let (f, _) = pick_fragment(2 << 20, 512 << 10, 4, &stages);
        assert!(f < 512 << 10, "expected a shorter ramp, kept {f}");
        assert!(f >= MIN_FRAG);
    }

    #[test]
    fn fragment_keeps_default_when_message_barely_fragments() {
        // One or two fragments: no steady state to model, never split.
        let stages = [
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
            Stage {
                fixed_ns: 100.0,
                ns_per_byte: 1.0,
            },
        ];
        for total in [256u64 << 10, 1 << 20] {
            let (f, d) = pick_fragment(total, 512 << 10, 4, &stages);
            assert_eq!((f, d), (512 << 10, 4));
        }
    }
}
