//! The pack/unpack execution engine: CPU preparation pipelined with GPU
//! kernels, fragment by fragment.

use crate::cache::DevCache;
use crate::config::EngineConfig;
use crate::dev::{flip_units_in_place, DevCursor, DevPlan};
use crate::tune;
use datatype::{DataType, Strided2D, TypeError};
use gpusim::{launch_transfer_kernel, GpuWorld, KernelConfig, StreamId};
use memsim::Ptr;
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::{Sim, SimTime, Track};
use std::cell::RefCell;
use std::rc::Rc;

/// Whether the typed side is the source (pack) or destination (unpack).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    Pack,
    Unpack,
}

/// Where work units come from.
enum UnitSource {
    /// Streaming conversion on the CPU (charged preparation time).
    Fresh(DevCursor),
    /// A cached CUDA-DEV plan (no preparation cost).
    Cached { plan: Rc<DevPlan>, pos: u64 },
    /// Vector-shaped type: units are computed arithmetically by the
    /// specialized kernel — no descriptor array, no per-unit CPU cost.
    Vector {
        block_bytes: u64,
        stride: i64,
        first_disp: i64,
        pos: u64,
        total: u64,
    },
    /// Doubly-strided type (e.g. a matrix transpose): units come from
    /// two nested strides computed arithmetically by the kernel — like
    /// `Vector`, no descriptor array and no per-unit CPU cost.
    Strided2D {
        shape: Strided2D,
        pos: u64,
        total: u64,
    },
}

/// Drives one logical pack or unpack job fragment by fragment.
///
/// Each fragment covers the next contiguous window of the *packed
/// stream*. The CPU stage (DEV preparation) and the GPU stage (the
/// kernel) are separated so callers can start preparing fragment `i+1`
/// the moment fragment `i`'s preparation finishes — the paper's §3.2
/// pipeline — while kernels queue up on the CUDA stream.
pub struct FragmentEngine {
    source: UnitSource,
    dir: Direction,
    cfg: EngineConfig,
    rank: usize,
    stream: StreamId,
    typed: Ptr,
    base_shift: i64,
    total: u64,
    pos: u64,
    descriptor_stream: bool,
    /// Auto-tuned pipeline chunk for streaming sources (None = use the
    /// configured default).
    chunk_hint: Option<u64>,
}

impl FragmentEngine {
    /// Build an engine for `count` instances of `ty` at `typed`
    /// (displacement-0 pointer into GPU or mapped-host memory).
    ///
    /// When `cache` is given, a miss materializes the full plan and
    /// charges its preparation once, up front; hits are free — exactly
    /// the paper's cached-CUDA-DEV behaviour.
    #[allow(clippy::too_many_arguments)] // mirrors the convertor-creation surface
    pub fn new<W: GpuWorld>(
        sim: &mut Sim<W>,
        rank: usize,
        stream: StreamId,
        ty: &DataType,
        count: u64,
        typed: Ptr,
        dir: Direction,
        cfg: EngineConfig,
        cache: Option<&Rc<RefCell<DevCache>>>,
    ) -> Result<FragmentEngine, TypeError> {
        let cfg = cfg.validated();
        let opt = cfg.optimizer;
        let total = ty.size() * count;
        let base_shift = ty.true_lb().min(0);

        // Commit-time canonicalization: structurally equivalent layouts
        // collapse to one tree, so they share DEV plans (and cache
        // entries) and the shape recognizers below see the simple form.
        let work_ty = if opt.canonicalize {
            ty.canonical()
        } else {
            ty.clone()
        };
        let effective = if count <= 1 {
            work_ty.clone()
        } else {
            let c = DataType::contiguous(count, &work_ty)?.commit();
            if opt.canonicalize {
                c.canonical()
            } else {
                c
            }
        };

        // Specialized vector kernel path.
        if let Some((_, block_bytes, stride, first_disp)) = effective.vector_shape() {
            sim.trace
                .count(names::DEVENGINE_SOURCE_VECTOR, rank as u32, 0, 1);
            return Ok(FragmentEngine {
                source: UnitSource::Vector {
                    block_bytes,
                    stride,
                    first_disp,
                    pos: 0,
                    total,
                },
                dir,
                cfg,
                rank,
                stream,
                typed,
                base_shift,
                total,
                pos: 0,
                descriptor_stream: false,
                chunk_hint: None,
            });
        }

        // Doubly-strided layouts (transposes, submatrices of vectors)
        // also compute their offsets arithmetically — no descriptor
        // array, no CPU preparation.
        if opt.vector_dispatch {
            if let Some(shape) = effective.strided2d_shape() {
                sim.trace
                    .count(names::DEVENGINE_SOURCE_STRIDED2D, rank as u32, 0, 1);
                return Ok(FragmentEngine {
                    source: UnitSource::Strided2D {
                        shape,
                        pos: 0,
                        total,
                    },
                    dir,
                    cfg,
                    rank,
                    stream,
                    typed,
                    base_shift,
                    total,
                    pos: 0,
                    descriptor_stream: false,
                    chunk_hint: None,
                });
            }
        }

        // Work-unit size: with coalescing the plan no longer splits at S
        // so there is nothing to tune; otherwise evaluate the analytic
        // per-unit cost over the paper's candidate sizes.
        let segments = work_ty.segment_estimate().saturating_mul(count).max(1);
        let unit_size = if opt.autotune && !opt.coalesce {
            let g = sim.world.gpus_ref().gpu(stream.gpu);
            let bw = g
                .effective_traffic_bw()
                .derated(g.spec.pack_kernel_efficiency)
                .as_gbps(); // bytes per nanosecond
            let desc_ns = g.spec.descriptor_bytes as f64 / bw;
            let picked = tune::pick_unit_size(
                cfg.unit_size,
                total,
                segments,
                cfg.prep_per_unit.as_nanos() as f64,
                desc_ns,
            );
            if picked != cfg.unit_size {
                sim.trace
                    .count(names::OPTIMIZER_UNIT_TUNED, rank as u32, 0, 1);
            }
            picked
        } else {
            cfg.unit_size
        };

        let source = if let Some(cache) = cache {
            let (plan, hit, evicted) = {
                let mut c = cache.borrow_mut();
                let ev0 = c.evictions();
                let (plan, hit) = c.get_or_build_opt(&work_ty, count, unit_size, opt.coalesce)?;
                (plan, hit, c.evictions() - ev0)
            };
            let now = sim.now();
            let cpu_track = Track::Cpu { rank: rank as u32 };
            if evicted > 0 {
                sim.trace
                    .count(names::DEVENGINE_CACHE_EVICT, rank as u32, 0, evicted);
            }
            if !hit {
                // First encounter: pay the one-time conversion.
                let prep = prep_time(&cfg, plan.units.len());
                let (s, e) = sim.world.cpu(rank).reserve(now, prep);
                sim.trace.instant(
                    now,
                    names::CAT_DEVENGINE,
                    names::SPAN_DEV_CACHE_MISS,
                    cpu_track,
                );
                sim.trace
                    .span_at(s, e, names::CAT_DEVENGINE, names::SPAN_PREP, cpu_track);
                sim.trace
                    .count(names::DEVENGINE_CACHE_MISS, rank as u32, 0, 1);
            } else {
                sim.trace.instant(
                    now,
                    names::CAT_DEVENGINE,
                    names::SPAN_DEV_CACHE_HIT,
                    cpu_track,
                );
                sim.trace
                    .count(names::DEVENGINE_CACHE_HIT, rank as u32, 0, 1);
            }
            sim.trace
                .count(names::DEVENGINE_SOURCE_CACHED, rank as u32, 0, 1);
            UnitSource::Cached { plan, pos: 0 }
        } else {
            sim.trace
                .count(names::DEVENGINE_SOURCE_FRESH, rank as u32, 0, 1);
            UnitSource::Fresh(DevCursor::with_coalesce(
                &work_ty,
                count,
                unit_size,
                opt.coalesce,
            )?)
        };

        // Pipeline-granularity tuning for streaming sources: weigh the
        // CPU preparation that pipelining hides against the extra kernel
        // launches it costs, using the same constants the simulator
        // charges.
        let mut chunk_hint = None;
        if opt.autotune && cfg.pipeline && total > 0 {
            if let UnitSource::Fresh(_) = source {
                let g = sim.world.gpus_ref().gpu(stream.gpu);
                let bw = g
                    .effective_traffic_bw()
                    .derated(g.spec.pack_kernel_efficiency)
                    .as_gbps();
                let units = if opt.coalesce {
                    segments as f64
                } else {
                    segments as f64 + total as f64 / unit_size as f64
                };
                // D2D pack traffic: payload read + write, plus the
                // descriptor each unit streams from DRAM.
                let traffic_per_byte = 2.0 + g.spec.descriptor_bytes as f64 * units / total as f64;
                let m = tune::ChunkModel {
                    total,
                    units_per_byte: units / total as f64,
                    prep_call_ns: cfg.prep_call.as_nanos() as f64,
                    prep_per_unit_ns: cfg.prep_per_unit.as_nanos() as f64,
                    launch_ns: g.spec.launch_overhead.as_nanos() as f64,
                    kernel_ns_per_byte: traffic_per_byte / bw,
                };
                let picked = tune::pick_pipeline_chunk(&m, cfg.pipeline_chunk);
                if picked != cfg.pipeline_chunk {
                    sim.trace
                        .count(names::OPTIMIZER_CHUNK_TUNED, rank as u32, 0, 1);
                    chunk_hint = Some(picked);
                }
            }
        }

        Ok(FragmentEngine {
            source,
            dir,
            cfg,
            rank,
            stream,
            typed,
            base_shift,
            total,
            pos: 0,
            descriptor_stream: true,
            chunk_hint,
        })
    }

    /// The auto-tuner's pipeline-chunk pick, if it deviated from the
    /// configured default.
    pub fn pipeline_chunk_hint(&self) -> Option<u64> {
        self.chunk_hint
    }

    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    pub fn position(&self) -> u64 {
        self.pos
    }

    pub fn finished(&self) -> bool {
        self.pos >= self.total
    }

    /// Does this engine have a CPU preparation stage at all? Vector
    /// and cached sources are prep-free — the paper launches a single
    /// kernel for those instead of pipelining CPU chunks.
    pub fn cpu_stage_free(&self) -> bool {
        !matches!(self.source, UnitSource::Fresh(_))
    }

    /// Fill `units` (cleared first) with the units for the next `n`
    /// packed bytes (pack orientation, packed offsets rebased to the
    /// fragment). Returns whether CPU prep is owed. Writing into a
    /// caller-supplied buffer keeps the steady-state fragment loop
    /// allocation-free — the buffers themselves cycle through
    /// [`simcore::scratch`].
    fn take_units_into(&mut self, n: u64, units: &mut Vec<CopyOp>) -> bool {
        let from = self.pos;
        match &mut self.source {
            UnitSource::Fresh(cur) => {
                cur.next_units_into(n, units);
                for u in units {
                    u.dst_off -= from as usize;
                }
                true
            }
            UnitSource::Cached { plan, pos } => {
                plan.slice_into(*pos, (*pos + n).min(plan.total_bytes), units);
                *pos = (*pos + n).min(plan.total_bytes);
                false
            }
            UnitSource::Vector {
                block_bytes,
                stride,
                first_disp,
                pos,
                total,
            } => {
                units.clear();
                let to = (*pos + n).min(*total);
                let bb = *block_bytes;
                let mut p = *pos;
                while p < to {
                    let block = p / bb;
                    let intra = p % bb;
                    let take = (bb - intra).min(to - p);
                    let disp = *first_disp + block as i64 * *stride + intra as i64;
                    units.push(CopyOp {
                        src_off: (disp - self.base_shift) as usize,
                        dst_off: (p - from) as usize,
                        len: take as usize,
                    });
                    p += take;
                }
                *pos = to;
                false
            }
            UnitSource::Strided2D { shape, pos, total } => {
                units.clear();
                let to = (*pos + n).min(*total);
                let bb = shape.block_bytes;
                let mut p = *pos;
                while p < to {
                    let block = p / bb;
                    let intra = p % bb;
                    let take = (bb - intra).min(to - p);
                    let i = (block / shape.inner) as i64;
                    let j = (block % shape.inner) as i64;
                    let disp = shape.first_disp
                        + i * shape.outer_stride
                        + j * shape.inner_stride
                        + intra as i64;
                    units.push(CopyOp {
                        src_off: (disp - self.base_shift) as usize,
                        dst_off: (p - from) as usize,
                        len: take as usize,
                    });
                    p += take;
                }
                *pos = to;
                false
            }
        }
    }

    /// Process the next fragment: up to `cap` packed bytes moved
    /// between the typed buffer and `frag` (a pointer to the fragment's
    /// contiguous storage — GPU, peer-GPU or mapped-host memory).
    ///
    /// `on_prepped` fires when the CPU stage is done (the caller may
    /// immediately start the next fragment — that is the pipeline);
    /// `on_complete` fires when the kernel has moved the bytes, with the
    /// fragment's size.
    pub fn process_fragment<W: GpuWorld>(
        &mut self,
        sim: &mut Sim<W>,
        frag: Ptr,
        cap: u64,
        on_prepped: impl FnOnce(&mut Sim<W>) + 'static,
        on_complete: impl FnOnce(&mut Sim<W>, u64) + 'static,
    ) {
        let n = cap.min(self.total - self.pos);
        if n == 0 {
            // Defer so callers never see their callbacks re-enter while
            // they still hold state borrows.
            sim.schedule_now(move |sim| {
                on_prepped(sim);
                on_complete(sim, 0);
            });
            return;
        }
        // The kernel completion recycles this buffer once the bytes have
        // moved, so steady-state streaming reuses a handful of Vecs.
        let mut units = simcore::scratch::take_units_buf();
        let charge_prep = self.take_units_into(n, &mut units);
        self.pos += n;
        debug_assert_eq!(units.iter().map(|u| u.len as u64).sum::<u64>(), n);

        let typed = self.typed.offset_by(self.base_shift);
        let (ksrc, kdst) = match self.dir {
            Direction::Pack => (typed, frag),
            Direction::Unpack => {
                flip_units_in_place(&mut units);
                (frag, typed)
            }
        };
        let kcfg = KernelConfig {
            blocks: self.cfg.blocks,
            descriptor_stream: self.descriptor_stream,
        };
        let stream = self.stream;
        let rank = self.rank as u32;
        let bytes_counter = match self.dir {
            Direction::Pack => names::DEVENGINE_PACK_BYTES,
            Direction::Unpack => names::DEVENGINE_UNPACK_BYTES,
        };

        if charge_prep {
            let prep = prep_time(&self.cfg, units.len());
            let now = sim.now();
            let (s, prep_end) = sim.world.cpu(self.rank).reserve(now, prep);
            sim.trace.span_at(
                s,
                prep_end,
                names::CAT_DEVENGINE,
                names::SPAN_PREP,
                Track::Cpu { rank },
            );
            sim.schedule_at(prep_end, move |sim| {
                on_prepped(sim);
                launch_transfer_kernel(sim, stream, ksrc, kdst, units, kcfg, move |sim, _| {
                    sim.trace.count(bytes_counter, rank, 0, n);
                    on_complete(sim, n);
                });
            });
        } else {
            // No CPU stage owed: the caller may continue at the same
            // virtual time, but deferred to the next event so callbacks
            // never re-enter the caller's borrows.
            sim.schedule_now(move |sim| on_prepped(sim));
            launch_transfer_kernel(sim, stream, ksrc, kdst, units, kcfg, move |sim, _| {
                sim.trace.count(bytes_counter, rank, 0, n);
                on_complete(sim, n);
            });
        }
    }
}

fn prep_time(cfg: &EngineConfig, units: usize) -> SimTime {
    SimTime::from_nanos(cfg.prep_per_unit.as_nanos() * units as u64) + cfg.prep_call
}

/// Pack `count` instances of `ty` from `typed` into the contiguous
/// buffer at `packed`, then call `done` with the completion time.
///
/// With `cfg.pipeline` the conversion runs in `pipeline_chunk` windows
/// overlapped with kernel execution; without it the whole datatype is
/// converted first and a single kernel is launched (Figure 7's
/// non-pipelined baseline).
#[allow(clippy::too_many_arguments)]
pub fn pack_async<W: GpuWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    stream: StreamId,
    ty: &DataType,
    count: u64,
    typed: Ptr,
    packed: Ptr,
    cfg: EngineConfig,
    cache: Option<&Rc<RefCell<DevCache>>>,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    run_async(
        sim,
        rank,
        stream,
        ty,
        count,
        typed,
        packed,
        Direction::Pack,
        cfg,
        cache,
        done,
    );
}

/// Unpack the contiguous buffer at `packed` into `count` instances of
/// `ty` at `typed`.
#[allow(clippy::too_many_arguments)]
pub fn unpack_async<W: GpuWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    stream: StreamId,
    ty: &DataType,
    count: u64,
    typed: Ptr,
    packed: Ptr,
    cfg: EngineConfig,
    cache: Option<&Rc<RefCell<DevCache>>>,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    run_async(
        sim,
        rank,
        stream,
        ty,
        count,
        typed,
        packed,
        Direction::Unpack,
        cfg,
        cache,
        done,
    );
}

#[allow(clippy::too_many_arguments)]
fn run_async<W: GpuWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    stream: StreamId,
    ty: &DataType,
    count: u64,
    typed: Ptr,
    packed: Ptr,
    dir: Direction,
    cfg: EngineConfig,
    cache: Option<&Rc<RefCell<DevCache>>>,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let pipeline_chunk = if cfg.pipeline {
        cfg.pipeline_chunk
    } else {
        u64::MAX
    };
    let engine = FragmentEngine::new(sim, rank, stream, ty, count, typed, dir, cfg, cache)
        .expect("datatype must be committed and valid");
    // The CPU pipeline only exists when there is CPU work to overlap;
    // prep-free sources launch one kernel for the whole datatype.
    let chunk = if engine.cpu_stage_free() {
        u64::MAX
    } else {
        engine.pipeline_chunk_hint().unwrap_or(pipeline_chunk)
    };
    let state = Rc::new(RefCell::new(Driver {
        engine: Some(engine),
        packed,
        chunk,
        inflight: 0,
        launched_all: false,
        done: Some(Box::new(done)),
    }));
    Driver::step(sim, state);
}

type DoneFn<W> = Box<dyn FnOnce(&mut Sim<W>, SimTime)>;

/// Whole-message driver: keeps the CPU converting ahead while kernels
/// drain on the stream.
struct Driver<W: GpuWorld> {
    engine: Option<FragmentEngine>,
    packed: Ptr,
    chunk: u64,
    inflight: u32,
    launched_all: bool,
    done: Option<DoneFn<W>>,
}

impl<W: GpuWorld> Driver<W> {
    fn finish_if_idle(sim: &mut Sim<W>, state: &Rc<RefCell<Driver<W>>>) {
        let done = {
            let mut s = state.borrow_mut();
            if s.launched_all && s.inflight == 0 {
                s.done.take()
            } else {
                None
            }
        };
        if let Some(done) = done {
            done(sim, sim.now());
        }
    }

    fn step(sim: &mut Sim<W>, state: Rc<RefCell<Driver<W>>>) {
        let (frag, cap) = {
            let mut s = state.borrow_mut();
            let engine = s.engine.as_ref().expect("engine in use");
            if engine.finished() {
                s.launched_all = true;
                drop(s);
                Driver::finish_if_idle(sim, &state);
                return;
            }
            let frag = s.packed.add(engine.position());
            s.inflight += 1;
            (frag, s.chunk)
        };
        // Take the engine out so its callbacks (which are deferred by
        // process_fragment) can re-enter this driver safely.
        let mut engine = state.borrow_mut().engine.take().expect("engine present");
        let st_prep = Rc::clone(&state);
        let st_done = Rc::clone(&state);
        engine.process_fragment(
            sim,
            frag,
            cap,
            move |sim| {
                // CPU free: convert the next fragment immediately.
                Driver::step(sim, st_prep);
            },
            move |sim, _bytes| {
                st_done.borrow_mut().inflight -= 1;
                Driver::finish_if_idle(sim, &st_done);
            },
        );
        state.borrow_mut().engine = Some(engine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use gpusim::{GpuSpec, NodeWorld};
    use memsim::{GpuId, MemSpace};

    fn world() -> Sim<NodeWorld> {
        Sim::new(NodeWorld::new(2))
    }

    /// Allocate a device buffer holding `count` instances of `ty`,
    /// filled with the position pattern; returns (typed ptr at
    /// displacement 0, full buffer bytes, base index).
    fn setup_typed(
        sim: &mut Sim<NodeWorld>,
        ty: &DataType,
        count: u64,
        gpu: GpuId,
    ) -> (Ptr, Vec<u8>, i64) {
        let (base, len) = buffer_span(ty, count);
        let buf = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), len as u64)
            .unwrap();
        let bytes = pattern(len);
        sim.world.memory.write(buf, &bytes).unwrap();
        (buf.add(base as u64), bytes, base)
    }

    fn run_pack(
        ty: &DataType,
        count: u64,
        cfg: EngineConfig,
        cache: Option<&Rc<RefCell<DevCache>>>,
    ) -> (Vec<u8>, SimTime) {
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, bytes, base) = setup_typed(&mut sim, ty, count, gpu);
        let total = ty.size() * count;
        let packed = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), total)
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        pack_async(
            &mut sim,
            0,
            stream,
            ty,
            count,
            typed,
            packed,
            cfg,
            cache,
            |_, _| {},
        );
        let end = sim.run();
        let got = sim.world.memory.read_vec(packed, total).unwrap();
        let expect = reference_pack(ty, count, &bytes, base);
        assert_eq!(got, expect, "pack bytes for {ty}");
        (got, end)
    }

    fn triangular(n: u64) -> DataType {
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit()
    }

    fn submatrix(n: u64) -> DataType {
        // n columns of n doubles out of a (2n x n) leading dimension.
        DataType::vector(n, n, 2 * n as i64, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn vector_pack_is_correct() {
        run_pack(&submatrix(32), 1, EngineConfig::default(), None);
    }

    #[test]
    fn indexed_pack_is_correct_all_modes() {
        let t = triangular(24);
        run_pack(&t, 1, EngineConfig::default(), None);
        run_pack(
            &t,
            1,
            EngineConfig {
                pipeline: false,
                ..Default::default()
            },
            None,
        );
        let cache = Rc::new(RefCell::new(DevCache::default()));
        run_pack(&t, 1, EngineConfig::default(), Some(&cache));
        // Warm cache second run.
        run_pack(&t, 1, EngineConfig::default(), Some(&cache));
        assert!(cache.borrow().hit_rate() > 0.0);
    }

    #[test]
    fn multi_count_pack() {
        let v = DataType::vector(4, 2, 5, &DataType::double())
            .unwrap()
            .commit();
        run_pack(&v, 3, EngineConfig::default(), None);
    }

    #[test]
    fn struct_type_pack() {
        let s = DataType::structure(&[2, 3], &[0, 32], &[DataType::int(), DataType::double()])
            .unwrap()
            .commit();
        run_pack(&s, 2, EngineConfig::default(), None);
    }

    #[test]
    fn unpack_roundtrip_on_gpu() {
        let t = triangular(16);
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, bytes, base) = setup_typed(&mut sim, &t, 1, gpu);
        let total = t.size();
        let packed = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), total)
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        pack_async(
            &mut sim,
            0,
            stream,
            &t,
            1,
            typed,
            packed,
            EngineConfig::default(),
            None,
            |_, _| {},
        );
        sim.run();

        // Scatter into a second, zeroed buffer and compare segments.
        let (base2, len2) = buffer_span(&t, 1);
        assert_eq!(base, base2);
        let out = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), len2 as u64)
            .unwrap();
        let typed_out = out.add(base2 as u64);
        unpack_async(
            &mut sim,
            0,
            stream,
            &t,
            1,
            typed_out,
            packed,
            EngineConfig::default(),
            None,
            |_, _| {},
        );
        sim.run();
        let got = sim.world.memory.read_vec(out, len2 as u64).unwrap();
        for s in t.segments(1) {
            let r = (base + s.disp) as usize..(base + s.disp) as usize + s.len as usize;
            assert_eq!(&got[r.clone()], &bytes[r], "segment at {}", s.disp);
        }
    }

    #[test]
    fn pipeline_beats_no_pipeline_on_indexed() {
        // Pinned to the pre-optimizer engine: coalescing shrinks the CPU
        // prep below the per-fragment launch overhead, at which point
        // pipelining (correctly) stops paying — this test is about the
        // pipeline mechanics themselves.
        let base = EngineConfig {
            optimizer: OptimizerConfig::disabled(),
            ..Default::default()
        };
        let t = triangular(2048); // ~17 MB triangular matrix
        let (_, piped) = run_pack(&t, 1, base.clone(), None);
        let (_, serial) = run_pack(
            &t,
            1,
            EngineConfig {
                pipeline: false,
                ..base
            },
            None,
        );
        assert!(
            piped < serial,
            "pipelining should overlap prep with kernels: {piped} vs {serial}"
        );
    }

    #[test]
    fn optimizer_never_slower_and_bytes_identical_on_indexed() {
        let t = triangular(96);
        let on = EngineConfig {
            optimizer: OptimizerConfig::enabled(),
            ..Default::default()
        };
        let off = EngineConfig {
            optimizer: OptimizerConfig::disabled(),
            ..Default::default()
        };
        let (pa, ta) = run_pack(&t, 1, on, None);
        let (pb, tb) = run_pack(&t, 1, off, None);
        assert_eq!(pa, pb, "optimizations must not change packed bytes");
        assert!(ta <= tb, "optimized pack got slower: {ta} vs {tb}");
    }

    #[test]
    fn strided2d_dispatch_beats_descriptor_path_on_transpose() {
        // The fig12 shape: column-vector of a row-vector (a transpose).
        let n = 128u64;
        let col = DataType::vector(n, 1, n as i64, &DataType::double()).unwrap();
        let t = DataType::hvector(n, 1, 8, &col).unwrap().commit();
        assert!(t.vector_shape().is_none());
        assert!(t.strided2d_shape().is_some());
        let on = EngineConfig {
            optimizer: OptimizerConfig::enabled(),
            ..Default::default()
        };
        let off = EngineConfig {
            optimizer: OptimizerConfig::disabled(),
            ..Default::default()
        };
        let (pa, ta) = run_pack(&t, 1, on, None);
        let (pb, tb) = run_pack(&t, 1, off, None);
        assert_eq!(pa, pb, "strided2d kernel must pack identical bytes");
        assert!(
            ta < tb,
            "arithmetic dispatch should beat descriptor streaming: {ta} vs {tb}"
        );
    }

    #[test]
    fn strided2d_fragments_match_oneshot() {
        let n = 48u64;
        let col = DataType::vector(n, 1, n as i64, &DataType::double()).unwrap();
        let t = DataType::hvector(n, 1, 8, &col).unwrap().commit();
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, bytes, base) = setup_typed(&mut sim, &t, 1, gpu);
        let total = t.size();
        let packed = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), total)
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        let mut eng = FragmentEngine::new(
            &mut sim,
            0,
            stream,
            &t,
            1,
            typed,
            Direction::Pack,
            EngineConfig {
                optimizer: OptimizerConfig::enabled(),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(eng.cpu_stage_free(), "strided2d source has no CPU stage");
        while !eng.finished() {
            let frag = packed.add(eng.position());
            eng.process_fragment(&mut sim, frag, 1000, |_| {}, |_, _| {});
            sim.run();
        }
        let got = sim.world.memory.read_vec(packed, total).unwrap();
        assert_eq!(got, reference_pack(&t, 1, &bytes, base));
    }

    #[test]
    fn cached_beats_fresh_on_indexed() {
        let t = triangular(512);
        let cache = Rc::new(RefCell::new(DevCache::default()));
        // Warm it.
        run_pack(&t, 1, EngineConfig::default(), Some(&cache));
        let (_, warm) = run_pack(&t, 1, EngineConfig::default(), Some(&cache));
        let (_, fresh) = run_pack(&t, 1, EngineConfig::default(), None);
        assert!(
            warm < fresh,
            "cached CUDA-DEVs skip preparation: {warm} vs {fresh}"
        );
    }

    #[test]
    fn uniform_indexed_normalizes_to_vector_path() {
        // A uniform indexed layout is recognized as vector-shaped and
        // takes the specialized kernel: identical bytes, identical time.
        let n = 256u64;
        let v = submatrix(n);
        let lens: Vec<u64> = (0..n).map(|_| n).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * 2 * n as i64).collect();
        let idx = DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit();
        assert!(idx.vector_shape().is_some());
        let (pv, tv) = run_pack(&v, 1, EngineConfig::default(), None);
        let (pi, ti) = run_pack(&idx, 1, EngineConfig::default(), None);
        assert_eq!(pv, pi, "identical layouts pack identically");
        assert_eq!(tv, ti, "both should take the vector kernel");
    }

    #[test]
    fn general_path_costs_more_than_vector_path() {
        // An irregular indexed type of the same total size must pay for
        // CPU preparation and descriptor streaming that the vector
        // kernel avoids.
        let n = 256u64;
        let v = submatrix(n);
        let lens: Vec<u64> = (0..n)
            .map(|c| if c % 2 == 0 { n - 1 } else { n + 1 })
            .collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * 2 * n as i64).collect();
        let idx = DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit();
        assert!(idx.vector_shape().is_none());
        assert_eq!(idx.size(), v.size());
        let (_, tv) = run_pack(&v, 1, EngineConfig::default(), None);
        let (_, ti) = run_pack(&idx, 1, EngineConfig::default(), None);
        assert!(tv < ti, "vector path should win: {tv} vs {ti}");
    }

    #[test]
    fn fragments_match_oneshot() {
        let t = triangular(64);
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, bytes, base) = setup_typed(&mut sim, &t, 1, gpu);
        let total = t.size();
        let packed = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), total)
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        let mut eng = FragmentEngine::new(
            &mut sim,
            0,
            stream,
            &t,
            1,
            typed,
            Direction::Pack,
            EngineConfig::default(),
            None,
        )
        .unwrap();
        // Drive fragments of 1000 bytes manually.
        while !eng.finished() {
            let frag = packed.add(eng.position());
            eng.process_fragment(&mut sim, frag, 1000, |_| {}, |_, _| {});
            sim.run();
        }
        let got = sim.world.memory.read_vec(packed, total).unwrap();
        assert_eq!(got, reference_pack(&t, 1, &bytes, base));
    }

    #[test]
    fn zero_copy_pack_to_host_is_pcie_bound() {
        let v = submatrix(512); // 2 MB payload
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, _, _) = setup_typed(&mut sim, &v, 1, gpu);
        let total = v.size();
        let host = sim.world.memory.alloc(MemSpace::Host, total).unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        pack_async(
            &mut sim,
            0,
            stream,
            &v,
            1,
            typed,
            host,
            EngineConfig::default(),
            None,
            |_, _| {},
        );
        let end = sim.run();
        let rate = total as f64 / end.as_secs_f64() / 1e9;
        // PCIe is 10 GB/s; the d2d pack of the same data is ~15x faster.
        assert!(
            rate < 10.5,
            "zero-copy pack cannot beat PCIe, got {rate} GB/s"
        );
        assert!(
            rate > 6.0,
            "pipeline should keep PCIe mostly busy, got {rate} GB/s"
        );
    }

    #[test]
    fn exactly_one_kernel_when_not_pipelined() {
        let t = triangular(128);
        let mut sim = world();
        let gpu = GpuId(0);
        let (typed, _, _) = setup_typed(&mut sim, &t, 1, gpu);
        let packed = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), t.size())
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        pack_async(
            &mut sim,
            0,
            stream,
            &t,
            1,
            typed,
            packed,
            EngineConfig {
                pipeline: false,
                ..Default::default()
            },
            None,
            |_, _| {},
        );
        sim.run();
        assert_eq!(sim.world.gpu_system.stream(stream).op_count(), 1);
        let _ = GpuSpec::k40();
    }
}
