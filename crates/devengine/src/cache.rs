//! The CUDA-DEV cache.
//!
//! A CUDA-DEV list depends only on the datatype (relative displacements)
//! — not on where the buffers live — so the paper caches it, either in
//! host or GPU memory, and reuses it for every later message with the
//! same type. Figure 7's "cached" curves show the preparation cost
//! disappearing entirely. The cache is bounded and evicts
//! least-recently-used plans.

use crate::dev::{build_plan, DevPlan};
use datatype::{DataType, TypeError};
use std::collections::HashMap;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    type_id: usize,
    count: u64,
    unit_size: u64,
}

/// LRU cache of materialized [`DevPlan`]s.
pub struct DevCache {
    map: HashMap<Key, (Rc<DevPlan>, u64)>,
    capacity_bytes: u64,
    used_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl DevCache {
    /// `capacity_bytes` bounds the descriptor memory (the paper spends
    /// "a few MBs of GPU memory"; default callers pass 8 MB).
    pub fn new(capacity_bytes: u64) -> DevCache {
        DevCache {
            map: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch the plan for `(ty, count, unit_size)`, building and
    /// inserting it on a miss. Returns the plan and whether it was a
    /// cache hit (the caller charges CPU preparation time only on a
    /// miss).
    pub fn get_or_build(
        &mut self,
        ty: &DataType,
        count: u64,
        unit_size: u64,
    ) -> Result<(Rc<DevPlan>, bool), TypeError> {
        let key = Key {
            type_id: ty.id(),
            count,
            unit_size,
        };
        self.clock += 1;
        if let Some((plan, stamp)) = self.map.get_mut(&key) {
            *stamp = self.clock;
            self.hits += 1;
            return Ok((Rc::clone(plan), true));
        }
        self.misses += 1;
        let plan = Rc::new(build_plan(ty, count, unit_size)?);
        let bytes = plan.descriptor_bytes();
        self.evict_for(bytes);
        self.used_bytes += bytes;
        self.map.insert(key, (Rc::clone(&plan), self.clock));
        Ok((plan, false))
    }

    fn evict_for(&mut self, incoming: u64) {
        while self.used_bytes + incoming > self.capacity_bytes && !self.map.is_empty() {
            let (&victim, _) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .expect("non-empty");
            let (plan, _) = self.map.remove(&victim).expect("exists");
            self.used_bytes -= plan.descriptor_bytes();
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

impl Default for DevCache {
    fn default() -> Self {
        DevCache::new(8 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_type(n: u64) -> DataType {
        DataType::vector(n, 2, 4, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn second_lookup_hits() {
        let mut c = DevCache::default();
        let t = vec_type(16);
        let (_, hit1) = c.get_or_build(&t, 1, 1024).unwrap();
        assert!(!hit1);
        let (_, hit2) = c.get_or_build(&t, 1, 1024).unwrap();
        assert!(hit2);
        assert_eq!(c.len(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_counts_and_unit_sizes_are_distinct_entries() {
        let mut c = DevCache::default();
        let t = vec_type(16);
        c.get_or_build(&t, 1, 1024).unwrap();
        let (_, hit) = c.get_or_build(&t, 2, 1024).unwrap();
        assert!(!hit);
        let (_, hit) = c.get_or_build(&t, 1, 2048).unwrap();
        assert!(!hit);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn structurally_equal_but_distinct_types_do_not_alias() {
        let mut c = DevCache::default();
        let a = vec_type(16);
        let b = vec_type(16);
        c.get_or_build(&a, 1, 1024).unwrap();
        let (_, hit) = c.get_or_build(&b, 1, 1024).unwrap();
        assert!(!hit, "identity-keyed cache must not alias distinct trees");
        // But a clone of `a` shares the tree and hits.
        let (_, hit) = c.get_or_build(&a.dup(), 1, 1024).unwrap();
        assert!(hit);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // Plans for vector(n, 2, 4) have n units of 32 bytes each.
        let mut c = DevCache::new(3000);
        let t1 = vec_type(32); // ~1 KB of descriptors
        let t2 = vec_type(32);
        let t3 = vec_type(32);
        c.get_or_build(&t1, 1, 1024).unwrap();
        c.get_or_build(&t2, 1, 1024).unwrap();
        c.get_or_build(&t1, 1, 1024).unwrap(); // refresh t1
        c.get_or_build(&t3, 1, 1024).unwrap(); // evicts t2 (LRU)
        assert_eq!(c.len(), 2);
        let (_, hit1) = c.get_or_build(&t1, 1, 1024).unwrap();
        assert!(hit1, "t1 was refreshed and must survive");
        let (_, hit2) = c.get_or_build(&t2, 1, 1024).unwrap();
        assert!(!hit2, "t2 was evicted");
    }

    #[test]
    fn accounting_tracks_descriptor_bytes() {
        let mut c = DevCache::default();
        let t = vec_type(8);
        let (plan, _) = c.get_or_build(&t, 1, 1024).unwrap();
        assert_eq!(c.used_bytes(), plan.descriptor_bytes());
    }
}
