//! The CUDA-DEV cache.
//!
//! A CUDA-DEV list depends only on the datatype (relative displacements)
//! — not on where the buffers live — so the paper caches it, either in
//! host or GPU memory, and reuses it for every later message with the
//! same type. Figure 7's "cached" curves show the preparation cost
//! disappearing entirely. The cache is bounded (descriptor bytes *and*
//! entry count) and evicts least-recently-used plans.
//!
//! Keys are **structural**: the datatype's layout fingerprint plus
//! `(count, unit_size)`, so a type rebuilt through the same constructor
//! calls — a fresh Session, a bench sweep re-deriving its datatypes —
//! still hits. TEMPI showed canonical keying is what makes datatype
//! caching pay off in real MPI applications, where types are routinely
//! reconstructed per communication epoch. Fingerprints are
//! collision-guarded by the type's exact size and true bounds.

use crate::dev::{build_plan_opt, DevPlan};
use datatype::{DataType, TypeError};
use simcore::hash::DetHashMap;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Key {
    /// Structural layout hash ([`DataType::layout_fingerprint`]).
    fingerprint: u64,
    /// Exact invariants that any fingerprint collision would have to
    /// match too before a wrong plan could be served.
    size: u64,
    true_lb: i64,
    true_ub: i64,
    count: u64,
    unit_size: u64,
    /// Coalesced and split plans have different unit lists; they must
    /// not alias.
    coalesce: bool,
}

impl Key {
    fn of(ty: &DataType, count: u64, unit_size: u64, coalesce: bool) -> Key {
        Key {
            fingerprint: ty.layout_fingerprint(),
            size: ty.size(),
            true_lb: ty.true_lb(),
            true_ub: ty.true_ub(),
            count,
            unit_size,
            coalesce,
        }
    }
}

/// Default bound on cached plans; descriptor bytes usually bind first,
/// this catches pathological sweeps over thousands of tiny types.
const DEFAULT_MAX_ENTRIES: usize = 256;

/// LRU cache of materialized [`DevPlan`]s.
pub struct DevCache {
    map: DetHashMap<Key, (Rc<DevPlan>, u64)>,
    capacity_bytes: u64,
    max_entries: usize,
    used_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DevCache {
    /// `capacity_bytes` bounds the descriptor memory (the paper spends
    /// "a few MBs of GPU memory"; default callers pass 8 MB).
    pub fn new(capacity_bytes: u64) -> DevCache {
        DevCache::with_limits(capacity_bytes, DEFAULT_MAX_ENTRIES)
    }

    /// Bound both descriptor bytes and the number of cached plans.
    pub fn with_limits(capacity_bytes: u64, max_entries: usize) -> DevCache {
        DevCache {
            map: DetHashMap::default(),
            capacity_bytes,
            max_entries: max_entries.max(1),
            used_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Fetch the plan for `(ty, count, unit_size)`, building and
    /// inserting it on a miss. Returns the plan and whether it was a
    /// cache hit (the caller charges CPU preparation time only on a
    /// miss).
    pub fn get_or_build(
        &mut self,
        ty: &DataType,
        count: u64,
        unit_size: u64,
    ) -> Result<(Rc<DevPlan>, bool), TypeError> {
        self.get_or_build_opt(ty, count, unit_size, false)
    }

    /// [`DevCache::get_or_build`] with an explicit coalescing mode, keyed
    /// so split and coalesced plans never alias.
    pub fn get_or_build_opt(
        &mut self,
        ty: &DataType,
        count: u64,
        unit_size: u64,
        coalesce: bool,
    ) -> Result<(Rc<DevPlan>, bool), TypeError> {
        let key = Key::of(ty, count, unit_size, coalesce);
        self.clock += 1;
        if let Some((plan, stamp)) = self.map.get_mut(&key) {
            *stamp = self.clock;
            self.hits += 1;
            return Ok((Rc::clone(plan), true));
        }
        self.misses += 1;
        let plan = Rc::new(build_plan_opt(ty, count, unit_size, coalesce)?);
        let bytes = plan.descriptor_bytes();
        self.evict_for(bytes);
        self.used_bytes += bytes;
        self.map.insert(key, (Rc::clone(&plan), self.clock));
        Ok((plan, false))
    }

    fn evict_for(&mut self, incoming: u64) {
        while (self.used_bytes + incoming > self.capacity_bytes
            || self.map.len() >= self.max_entries)
            && !self.map.is_empty()
        {
            let (&victim, _) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .expect("non-empty");
            let (plan, _) = self.map.remove(&victim).expect("exists");
            self.used_bytes -= plan.descriptor_bytes();
            self.evictions += 1;
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

impl Default for DevCache {
    fn default() -> Self {
        DevCache::new(8 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_type(n: u64) -> DataType {
        DataType::vector(n, 2, 4, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn second_lookup_hits() {
        let mut c = DevCache::default();
        let t = vec_type(16);
        let (_, hit1) = c.get_or_build(&t, 1, 1024).unwrap();
        assert!(!hit1);
        let (_, hit2) = c.get_or_build(&t, 1, 1024).unwrap();
        assert!(hit2);
        assert_eq!(c.len(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_counts_and_unit_sizes_are_distinct_entries() {
        let mut c = DevCache::default();
        let t = vec_type(16);
        c.get_or_build(&t, 1, 1024).unwrap();
        let (_, hit) = c.get_or_build(&t, 2, 1024).unwrap();
        assert!(!hit);
        let (_, hit) = c.get_or_build(&t, 1, 2048).unwrap();
        assert!(!hit);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn structurally_equal_types_share_one_entry() {
        // Two separately constructed (distinct trees, distinct ids) but
        // structurally identical types: the second lookup must hit — the
        // acceptance shape of TEMPI-style canonical keying.
        let mut c = DevCache::default();
        let a = vec_type(16);
        let b = vec_type(16);
        assert_ne!(a.id(), b.id());
        let (pa, hit) = c.get_or_build(&a, 1, 1024).unwrap();
        assert!(!hit);
        let (pb, hit) = c.get_or_build(&b, 1, 1024).unwrap();
        assert!(hit, "structural key must alias identical layouts");
        assert!(Rc::ptr_eq(&pa, &pb));
        assert_eq!(c.len(), 1);
        assert!(c.hit_rate() > 0.0);
        // A clone still hits, and a structurally different type doesn't.
        let (_, hit) = c.get_or_build(&a.dup(), 1, 1024).unwrap();
        assert!(hit);
        let (_, hit) = c.get_or_build(&vec_type(17), 1, 1024).unwrap();
        assert!(!hit);
    }

    #[test]
    fn structural_key_does_not_alias_same_signature_different_layout() {
        // vector(8,8,16,BYTE) and contiguous(64,BYTE) pack the same
        // primitive sequence but need different plans.
        let byte = DataType::byte();
        let v = DataType::vector(8, 8, 16, &byte).unwrap().commit();
        let c64 = DataType::contiguous(64, &byte).unwrap().commit();
        let mut c = DevCache::default();
        c.get_or_build(&v, 1, 1024).unwrap();
        let (plan, hit) = c.get_or_build(&c64, 1, 1024).unwrap();
        assert!(!hit, "different layouts must not share a plan");
        assert_eq!(plan.units.len(), 1);
    }

    #[test]
    fn lru_eviction_under_byte_pressure() {
        // Plans for vector(n, 2, 4) have n units of 32 bytes each. Use
        // structurally distinct types so each occupies its own entry.
        let mut c = DevCache::new(3000);
        let t1 = vec_type(32); // 1024 descriptor bytes
        let t2 = vec_type(33); // 1056
        let t3 = vec_type(34); // 1088
        c.get_or_build(&t1, 1, 1024).unwrap();
        c.get_or_build(&t2, 1, 1024).unwrap();
        c.get_or_build(&t1, 1, 1024).unwrap(); // refresh t1
        c.get_or_build(&t3, 1, 1024).unwrap(); // 1024+1056+1088 > 3000: evicts t2 (LRU)
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= c.capacity_bytes());
        let (_, hit1) = c.get_or_build(&t1, 1, 1024).unwrap();
        assert!(hit1, "t1 was refreshed and must survive");
        let (_, hit2) = c.get_or_build(&t2, 1, 1024).unwrap();
        assert!(!hit2, "t2 was evicted");
    }

    #[test]
    fn lru_eviction_under_entry_pressure() {
        // Byte capacity is effectively unlimited; the entry bound binds.
        let mut c = DevCache::with_limits(u64::MAX, 2);
        let t1 = vec_type(8);
        let t2 = vec_type(9);
        let t3 = vec_type(10);
        c.get_or_build(&t1, 1, 1024).unwrap();
        c.get_or_build(&t2, 1, 1024).unwrap();
        c.get_or_build(&t1, 1, 1024).unwrap(); // refresh t1
        c.get_or_build(&t3, 1, 1024).unwrap(); // evicts t2 (LRU)
        assert_eq!(c.len(), 2);
        let (_, hit) = c.get_or_build(&t1, 1, 1024).unwrap();
        assert!(hit);
        let (_, hit) = c.get_or_build(&t2, 1, 1024).unwrap();
        assert!(!hit, "t2 fell to the entry bound");
    }

    #[test]
    fn accounting_tracks_descriptor_bytes() {
        let mut c = DevCache::default();
        let t = vec_type(8);
        let (plan, _) = c.get_or_build(&t, 1, 1024).unwrap();
        assert_eq!(c.used_bytes(), plan.descriptor_bytes());
    }

    #[test]
    fn coalesced_and_split_plans_do_not_alias() {
        let mut c = DevCache::default();
        let t = DataType::contiguous(1280, &DataType::double())
            .unwrap()
            .commit(); // one 10 KB run
        let (split, hit) = c.get_or_build_opt(&t, 1, 1024, false).unwrap();
        assert!(!hit);
        let (coal, hit) = c.get_or_build_opt(&t, 1, 1024, true).unwrap();
        assert!(!hit, "coalesce flag must be part of the key");
        assert_eq!(split.units.len(), 10);
        assert_eq!(coal.units.len(), 1);
        let (_, hit) = c.get_or_build_opt(&t, 1, 1024, true).unwrap();
        assert!(hit);
    }

    #[test]
    fn eviction_counter_tracks_lru_removals() {
        let mut c = DevCache::with_limits(u64::MAX, 2);
        assert_eq!((c.hits(), c.misses(), c.evictions()), (0, 0, 0));
        c.get_or_build(&vec_type(8), 1, 1024).unwrap();
        c.get_or_build(&vec_type(9), 1, 1024).unwrap();
        c.get_or_build(&vec_type(10), 1, 1024).unwrap(); // evicts
        c.get_or_build(&vec_type(10), 1, 1024).unwrap(); // hit
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
        assert_eq!(c.evictions(), 1);
    }
}
