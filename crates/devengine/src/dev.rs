//! DEV generation: datatype → segment stream → CUDA-DEV work units.
//!
//! Work units are emitted in *packed-stream order*: for a pack, a unit's
//! `dst_off` equals its byte position in the packed stream (and
//! symmetrically `src_off` for an unpack). This ordering is what lets a
//! fragment of the packed stream be described by a contiguous run of
//! units, which both the fragment engine and the cache slicing rely on.

use datatype::{Convertor, DataType, PackKind, Segment, TypeError};
use simcore::par::CopyOp;

/// A borrowed view of the units covering one packed range: at most one
/// boundary-trimmed unit on each side plus an untouched middle run of
/// the plan's own units. All offsets are the plan's *absolute* packed
/// offsets — see [`DevPlan::slice_into`] for the rebased form a fragment
/// buffer needs.
#[derive(Debug)]
pub struct SliceParts<'a> {
    /// First unit, trimmed, when the range starts mid-unit.
    pub head: Option<CopyOp>,
    /// Units fully inside the range, borrowed from the plan.
    pub middle: &'a [CopyOp],
    /// Last unit, trimmed, when the range ends mid-unit.
    pub tail: Option<CopyOp>,
}

/// A fully materialized CUDA-DEV plan for `count` instances of a type,
/// in **pack orientation** (src = typed memory, dst = packed stream).
#[derive(Clone, Debug)]
pub struct DevPlan {
    /// Work units in packed-stream order.
    pub units: Vec<CopyOp>,
    /// Displacement subtracted from every typed-side offset so that all
    /// offsets are non-negative (`min(0, true_lb)`); the kernel's typed
    /// base pointer must be shifted by this amount.
    pub base_shift: i64,
    /// Total packed bytes.
    pub total_bytes: u64,
    /// Unit size the plan was built with.
    pub unit_size: u64,
}

impl DevPlan {
    /// Approximate device memory the cached descriptor array occupies
    /// (the paper's "a few MBs of GPU memory to cache the CUDA DEVs").
    pub fn descriptor_bytes(&self) -> u64 {
        self.units.len() as u64 * 32
    }

    /// The units covering packed range `[from, to)` as a borrowed view:
    /// the interior units come straight from the plan (no copy), with at
    /// most two boundary-split ops materialized for ranges that start or
    /// end mid-unit. Offsets stay absolute.
    pub fn slice_parts(&self, from: u64, to: u64) -> SliceParts<'_> {
        debug_assert!(from <= to && to <= self.total_bytes);
        // Units are sorted by dst_off; binary search both boundaries.
        let start = self
            .units
            .partition_point(|u| (u.dst_off + u.len) as u64 <= from);
        let end = self.units.partition_point(|u| (u.dst_off as u64) < to);
        let mut middle = &self.units[start..end];
        let mut head = None;
        let mut tail = None;
        if let Some(first) = middle.first() {
            let u_start = first.dst_off as u64;
            let u_end = u_start + first.len as u64;
            let lo = from.max(u_start);
            let hi = to.min(u_end);
            if hi <= lo {
                // Empty window (from == to) landing inside a unit.
                middle = &middle[..0];
            } else if lo > u_start || hi < u_end {
                head = Some(CopyOp {
                    src_off: first.src_off + (lo - u_start) as usize,
                    dst_off: lo as usize,
                    len: (hi - lo) as usize,
                });
                middle = &middle[1..];
            }
        }
        if let Some(last) = middle.last() {
            let u_start = last.dst_off as u64;
            let u_end = u_start + last.len as u64;
            let hi = to.min(u_end);
            if hi < u_end {
                tail = Some(CopyOp {
                    src_off: last.src_off,
                    dst_off: last.dst_off,
                    len: (hi - u_start) as usize,
                });
                middle = &middle[..middle.len() - 1];
            }
        }
        SliceParts { head, middle, tail }
    }

    /// Fill `out` (cleared first) with the units covering packed range
    /// `[from, to)`, rebased so the packed-side offset is relative to
    /// `from` (a fragment buffer). Units straddling the boundary are
    /// trimmed. Allocation-free once `out` has warmed up.
    pub fn slice_into(&self, from: u64, to: u64, out: &mut Vec<CopyOp>) {
        out.clear();
        let parts = self.slice_parts(from, to);
        let rebase = |u: &CopyOp| CopyOp {
            src_off: u.src_off,
            dst_off: u.dst_off - from as usize,
            len: u.len,
        };
        if let Some(h) = &parts.head {
            out.push(rebase(h));
        }
        out.extend(parts.middle.iter().map(rebase));
        if let Some(t) = &parts.tail {
            out.push(rebase(t));
        }
    }

    /// Allocating convenience wrapper over [`Self::slice_into`].
    pub fn slice(&self, from: u64, to: u64) -> Vec<CopyOp> {
        let mut out = Vec::new();
        self.slice_into(from, to, &mut out);
        out
    }
}

/// Swap pack orientation into unpack orientation (packed stream becomes
/// the source, typed memory the destination).
pub fn flip_units(units: &[CopyOp]) -> Vec<CopyOp> {
    units
        .iter()
        .map(|u| CopyOp {
            src_off: u.dst_off,
            dst_off: u.src_off,
            len: u.len,
        })
        .collect()
}

/// In-place variant of [`flip_units`] for the allocation-free unpack
/// path (the unit buffer is scratch anyway).
pub fn flip_units_in_place(units: &mut [CopyOp]) {
    for u in units {
        std::mem::swap(&mut u.src_off, &mut u.dst_off);
    }
}

/// One-shot DEV walk: the full unit list for `count` elements of `ty`
/// in pack orientation (`src_off` typed, `dst_off` packed from 0),
/// plus the typed-side `base_shift`. Whole-message consumers — the
/// stream-triggered capture bakes its graph kernels from this — get
/// their program without driving a cursor fragment by fragment.
pub fn whole_units(
    ty: &DataType,
    count: u64,
    unit_size: u64,
    coalesce: bool,
) -> Result<(Vec<CopyOp>, i64), TypeError> {
    let mut cur = DevCursor::with_coalesce(ty, count, unit_size, coalesce)?;
    let shift = cur.base_shift();
    let mut units = Vec::new();
    cur.next_units_into(u64::MAX, &mut units);
    Ok((units, shift))
}

/// Streaming DEV generator: wraps the stack-based convertor and splits
/// segments into `unit_size` work units on demand — the CPU half of the
/// paper's pipeline.
pub struct DevCursor {
    cv: Convertor,
    unit_size: u64,
    /// Coalesce mode: one work unit per contiguous run instead of
    /// splitting runs at `unit_size` boundaries (the optimizer's DEV
    /// coalescing pass — fewer, larger units for the cost model).
    coalesce: bool,
    base_shift: i64,
    /// Reused batch buffer for the convertor's segment output, so
    /// steady-state streaming does not allocate per batch.
    seg_buf: Vec<(Segment, u64)>,
}

impl DevCursor {
    pub fn new(ty: &DataType, count: u64, unit_size: u64) -> Result<DevCursor, TypeError> {
        DevCursor::with_coalesce(ty, count, unit_size, false)
    }

    /// Like [`DevCursor::new`] with an explicit coalescing mode.
    pub fn with_coalesce(
        ty: &DataType,
        count: u64,
        unit_size: u64,
        coalesce: bool,
    ) -> Result<DevCursor, TypeError> {
        Ok(DevCursor {
            cv: Convertor::new(ty, count, PackKind::Pack)?,
            unit_size,
            coalesce,
            base_shift: ty.true_lb().min(0),
            seg_buf: Vec::new(),
        })
    }

    pub fn base_shift(&self) -> i64 {
        self.base_shift
    }

    pub fn total_bytes(&self) -> u64 {
        self.cv.total_bytes()
    }

    pub fn position(&self) -> u64 {
        self.cv.position()
    }

    pub fn finished(&self) -> bool {
        self.cv.finished()
    }

    /// Produce the units covering the next `max_packed` bytes of the
    /// packed stream (pack orientation, absolute packed offsets).
    pub fn next_units(&mut self, max_packed: u64) -> Vec<CopyOp> {
        let mut units = Vec::new();
        self.next_units_into(max_packed, &mut units);
        units
    }

    /// Allocation-free variant of [`Self::next_units`]: clears `out` and
    /// fills it, reusing the cursor's internal segment batch buffer.
    pub fn next_units_into(&mut self, max_packed: u64, out: &mut Vec<CopyOp>) {
        out.clear();
        let mut segs = std::mem::take(&mut self.seg_buf);
        self.cv.next_segments_into(max_packed, &mut segs);
        for (seg, packed_pos) in &segs {
            if self.coalesce {
                push_coalesced(seg.disp - self.base_shift, *packed_pos, seg.len, out);
            } else {
                split_segment(
                    seg.disp - self.base_shift,
                    *packed_pos,
                    seg.len,
                    self.unit_size,
                    out,
                );
            }
        }
        self.seg_buf = segs;
    }
}

/// Append one coalesced work unit, merging with the previous unit when
/// the two are adjacent on both the typed and the packed side (a run the
/// convertor clipped at a batch boundary).
fn push_coalesced(src_disp: i64, packed_pos: u64, len: u64, out: &mut Vec<CopyOp>) {
    debug_assert!(
        src_disp >= 0,
        "segment displacement not normalized: {src_disp}"
    );
    if let Some(last) = out.last_mut() {
        if last.src_off + last.len == src_disp as usize
            && last.dst_off + last.len == packed_pos as usize
        {
            last.len += len as usize;
            return;
        }
    }
    out.push(CopyOp {
        src_off: src_disp as usize,
        dst_off: packed_pos as usize,
        len: len as usize,
    });
}

/// Split one DEV (a contiguous segment) into CUDA-DEV units of at most
/// `unit_size` bytes. The residue stays a smaller unit, treated like any
/// other (the paper found delegating residues to a second stream not
/// worth the extra launch).
fn split_segment(src_disp: i64, packed_pos: u64, len: u64, unit_size: u64, out: &mut Vec<CopyOp>) {
    debug_assert!(
        src_disp >= 0,
        "segment displacement not normalized: {src_disp}"
    );
    let mut off = 0u64;
    while off < len {
        let l = (len - off).min(unit_size);
        out.push(CopyOp {
            src_off: (src_disp as u64 + off) as usize,
            dst_off: (packed_pos + off) as usize,
            len: l as usize,
        });
        off += l;
    }
}

/// Materialize the complete plan for `count` instances (what the cache
/// stores).
pub fn build_plan(ty: &DataType, count: u64, unit_size: u64) -> Result<DevPlan, TypeError> {
    build_plan_opt(ty, count, unit_size, false)
}

/// [`build_plan`] with an explicit coalescing mode: with `coalesce` each
/// maximal contiguous run becomes one work unit regardless of
/// `unit_size` (the recorded `unit_size` still names the configuration
/// the plan was built for, i.e. the cache key).
pub fn build_plan_opt(
    ty: &DataType,
    count: u64,
    unit_size: u64,
    coalesce: bool,
) -> Result<DevPlan, TypeError> {
    let mut cur = DevCursor::with_coalesce(ty, count, unit_size, coalesce)?;
    let total = cur.total_bytes();
    let mut units = Vec::new();
    while !cur.finished() {
        units.extend(cur.next_units(u64::MAX));
    }
    Ok(DevPlan {
        units,
        base_shift: cur.base_shift(),
        total_bytes: total,
        unit_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatype::DataType;

    fn dbl() -> DataType {
        DataType::double()
    }

    #[test]
    fn plan_conserves_bytes_and_order() {
        let v = DataType::vector(8, 4, 7, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 2, 1024).unwrap();
        assert_eq!(plan.total_bytes, v.size() * 2);
        let sum: usize = plan.units.iter().map(|u| u.len).sum();
        assert_eq!(sum as u64, plan.total_bytes);
        // dst offsets are the packed stream: strictly increasing and
        // gapless.
        let mut pos = 0usize;
        for u in &plan.units {
            assert_eq!(u.dst_off, pos);
            pos += u.len;
        }
    }

    #[test]
    fn large_blocks_split_into_units() {
        // One 10 KB contiguous block with S = 1 KB -> 10 units.
        let c = DataType::contiguous(1280, &dbl()).unwrap().commit();
        let plan = build_plan(&c, 1, 1024).unwrap();
        assert_eq!(plan.units.len(), 10);
        assert!(plan.units.iter().all(|u| u.len == 1024));
    }

    #[test]
    fn residue_units_are_kept_inline() {
        // 1.5 KB blocks -> one 1 KB unit + one 512 B residue each.
        let v = DataType::vector(4, 192, 300, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 1, 1024).unwrap();
        assert_eq!(plan.units.len(), 8);
        assert_eq!(plan.units[0].len, 1024);
        assert_eq!(plan.units[1].len, 512);
        // Residue is followed immediately by the next block's first unit.
        assert_eq!(plan.units[2].dst_off, 1536);
    }

    #[test]
    fn cursor_chunks_agree_with_full_plan() {
        let n = 16u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap().commit();
        let plan = build_plan(&t, 1, 256).unwrap();

        let mut cur = DevCursor::new(&t, 1, 256).unwrap();
        let mut units = Vec::new();
        while !cur.finished() {
            units.extend(cur.next_units(300)); // awkward chunk size
        }
        // Chunked generation may split units at chunk boundaries; the
        // byte coverage must be identical though.
        let cover = |us: &[CopyOp]| -> Vec<(usize, usize, usize)> {
            let mut v: Vec<(usize, usize, usize)> =
                us.iter().map(|u| (u.dst_off, u.src_off, u.len)).collect();
            v.sort_unstable();
            // Merge adjacent spans that are contiguous in both spaces.
            let mut m: Vec<(usize, usize, usize)> = Vec::new();
            for (d, s, l) in v {
                match m.last_mut() {
                    Some((md, ms, ml)) if *md + *ml == d && *ms + *ml == s => *ml += l,
                    _ => m.push((d, s, l)),
                }
            }
            m
        };
        assert_eq!(cover(&units), cover(&plan.units));
    }

    #[test]
    fn coalesced_plan_is_one_unit_per_run() {
        // One 10 KB contiguous block: 10 units at S=1 KB, 1 coalesced.
        let c = DataType::contiguous(1280, &dbl()).unwrap().commit();
        let plan = build_plan_opt(&c, 1, 1024, true).unwrap();
        assert_eq!(plan.units.len(), 1);
        assert_eq!(plan.units[0].len as u64, plan.total_bytes);
        // Strided rows stay one unit per row.
        let v = DataType::vector(4, 192, 300, &dbl()).unwrap().commit();
        let plan = build_plan_opt(&v, 1, 1024, true).unwrap();
        assert_eq!(plan.units.len(), 4);
        assert!(plan.units.iter().all(|u| u.len == 1536));
    }

    #[test]
    fn coalesced_plan_covers_same_bytes() {
        let n = 16u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap().commit();
        let plain = build_plan(&t, 2, 256).unwrap();
        let coal = build_plan_opt(&t, 2, 256, true).unwrap();
        assert_eq!(coal.total_bytes, plain.total_bytes);
        assert_eq!(coal.base_shift, plain.base_shift);
        assert!(coal.units.len() <= plain.units.len());
        // Normalized (merged) coverage must be identical.
        let cover = |us: &[CopyOp]| -> Vec<(usize, usize, usize)> {
            let mut m: Vec<(usize, usize, usize)> = Vec::new();
            for u in us {
                match m.last_mut() {
                    Some((md, ms, ml)) if *md + *ml == u.dst_off && *ms + *ml == u.src_off => {
                        *ml += u.len
                    }
                    _ => m.push((u.dst_off, u.src_off, u.len)),
                }
            }
            m
        };
        assert_eq!(cover(&coal.units), cover(&plain.units));
        // Coalesced units are maximal: no two adjacent in both spaces.
        assert_eq!(cover(&coal.units).len(), coal.units.len());
    }

    #[test]
    fn coalesced_cursor_merges_across_batch_clips() {
        // A 4 KB contiguous run streamed in 1000-byte batches: the
        // cursor cannot merge across calls (different fragments), but
        // each call's units must be internally maximal.
        let c = DataType::contiguous(512, &dbl()).unwrap().commit();
        let mut cur = DevCursor::with_coalesce(&c, 1, 256, true).unwrap();
        let mut calls = 0;
        while !cur.finished() {
            let units = cur.next_units(1000);
            assert_eq!(units.len(), 1, "one maximal unit per batch");
            calls += 1;
        }
        assert_eq!(calls, 5);
    }

    #[test]
    fn negative_lb_is_normalized() {
        let r = DataType::resized(&dbl(), -8, 16).unwrap();
        let t = DataType::hindexed(&[1, 1], &[-16, 0], &r).unwrap().commit();
        let plan = build_plan(&t, 1, 1024).unwrap();
        assert_eq!(plan.base_shift, -16);
        assert!(plan.units.iter().all(|u| u.src_off as i64 >= 0));
        assert_eq!(plan.units[0].src_off, 0); // disp -16 shifted by +16
    }

    #[test]
    fn slice_trims_and_rebases() {
        let c = DataType::contiguous(512, &dbl()).unwrap().commit(); // 4 KB
        let plan = build_plan(&c, 1, 1024).unwrap();
        assert_eq!(plan.units.len(), 4);
        // Take bytes 1500..2600: should touch units 1 and 2, trimmed.
        let s = plan.slice(1500, 2600);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s[0],
            CopyOp {
                src_off: 1500,
                dst_off: 0,
                len: 548
            }
        );
        assert_eq!(
            s[1],
            CopyOp {
                src_off: 2048,
                dst_off: 548,
                len: 552
            }
        );
        let total: usize = s.iter().map(|u| u.len).sum();
        assert_eq!(total, 1100);
    }

    #[test]
    fn slice_whole_range_is_identity_coverage() {
        let v = DataType::vector(6, 2, 5, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 3, 256).unwrap();
        let s = plan.slice(0, plan.total_bytes);
        assert_eq!(s.len(), plan.units.len());
        assert_eq!(s, plan.units);
    }

    #[test]
    fn slice_empty_range_is_empty() {
        let c = DataType::contiguous(512, &dbl()).unwrap().commit();
        let plan = build_plan(&c, 1, 1024).unwrap();
        assert!(plan.slice(100, 100).is_empty());
        assert!(plan.slice(plan.total_bytes, plan.total_bytes).is_empty());
    }

    #[test]
    fn slice_parts_borrows_interior_units() {
        let c = DataType::contiguous(512, &dbl()).unwrap().commit(); // 4 KB
        let plan = build_plan(&c, 1, 1024).unwrap();
        // 1500..3500 crosses units 1..3: trimmed head + trimmed tail,
        // one untouched unit borrowed in between.
        let p = plan.slice_parts(1500, 3500);
        assert_eq!(
            p.head,
            Some(CopyOp {
                src_off: 1500,
                dst_off: 1500,
                len: 548
            })
        );
        assert_eq!(p.middle.len(), 1);
        assert!(
            std::ptr::eq(&p.middle[0], &plan.units[2]),
            "middle is borrowed"
        );
        assert_eq!(
            p.tail,
            Some(CopyOp {
                src_off: 3072,
                dst_off: 3072,
                len: 428
            })
        );
        // Unit-aligned range: pure borrow, no boundary splits.
        let p = plan.slice_parts(1024, 3072);
        assert!(p.head.is_none() && p.tail.is_none());
        assert_eq!(p.middle, &plan.units[1..3]);
        // Range inside a single unit: head only.
        let p = plan.slice_parts(100, 200);
        assert_eq!(
            p.head,
            Some(CopyOp {
                src_off: 100,
                dst_off: 100,
                len: 100
            })
        );
        assert!(p.middle.is_empty() && p.tail.is_none());
    }

    #[test]
    fn slice_into_matches_slice_and_reuses_buffer() {
        let v = DataType::vector(9, 3, 7, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 2, 64).unwrap();
        let mut buf = Vec::new();
        let mut from = 0u64;
        while from < plan.total_bytes {
            let to = (from + 100).min(plan.total_bytes);
            plan.slice_into(from, to, &mut buf);
            assert_eq!(buf, plan.slice(from, to), "window {from}..{to}");
            from = to;
        }
    }

    #[test]
    fn next_units_into_matches_next_units() {
        let n = 12u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap().commit();
        let mut a = DevCursor::new(&t, 2, 96).unwrap();
        let mut b = DevCursor::new(&t, 2, 96).unwrap();
        let mut buf = Vec::new();
        while !a.finished() {
            b.next_units_into(250, &mut buf);
            assert_eq!(a.next_units(250), buf);
        }
        assert!(b.finished());
    }

    #[test]
    fn flip_in_place_matches_flip() {
        let v = DataType::vector(5, 2, 6, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 1, 64).unwrap();
        let mut inplace = plan.units.clone();
        flip_units_in_place(&mut inplace);
        assert_eq!(inplace, flip_units(&plan.units));
    }

    #[test]
    fn descriptor_bytes_track_units() {
        let v = DataType::vector(7, 1, 3, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 1, 1024).unwrap();
        assert_eq!(plan.descriptor_bytes(), plan.units.len() as u64 * 32);
    }

    #[test]
    fn cursor_handles_unit_exact_boundaries() {
        // Segments exactly equal to the unit size: no residues.
        let c = DataType::contiguous(128, &dbl()).unwrap(); // 1 KB
        let v = DataType::vector(4, 1, 2, &c).unwrap().commit();
        let plan = build_plan(&v, 1, 1024).unwrap();
        assert_eq!(plan.units.len(), 4);
        assert!(plan.units.iter().all(|u| u.len == 1024));
    }

    #[test]
    fn flip_swaps_roles() {
        let v = DataType::vector(2, 1, 3, &dbl()).unwrap().commit();
        let plan = build_plan(&v, 1, 1024).unwrap();
        let f = flip_units(&plan.units);
        for (a, b) in plan.units.iter().zip(&f) {
            assert_eq!(a.src_off, b.dst_off);
            assert_eq!(a.dst_off, b.src_off);
            assert_eq!(a.len, b.len);
        }
    }
}
