//! Engine tuning knobs.

use simcore::SimTime;

/// Toggles for the commit-time optimizer layer. Every pass is
/// individually switchable so ablation benches can reproduce the
/// pre-optimizer numbers exactly; [`OptimizerConfig::default`] reads the
/// `GPU_DDT_*` environment overrides so a whole figure run can be pinned
/// without touching bench code.
///
/// Environment overrides (value `0`/`false`/`off`/`no` disables,
/// anything else enables):
///
/// * `GPU_DDT_OPT` — master switch; `off` starts from
///   [`OptimizerConfig::disabled`] before per-pass overrides apply.
/// * `GPU_DDT_CANON` — datatype canonicalization at engine entry.
/// * `GPU_DDT_COALESCE` — DEV coalescing (adjacent work units merged).
/// * `GPU_DDT_VECTOR` — extended strided-2D kernel dispatch.
/// * `GPU_DDT_TUNE` — the analytic unit-size / fragment auto-tuner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Rewrite the datatype tree to canonical form before planning; the
    /// canonical form also becomes the structural cache key.
    pub canonicalize: bool,
    /// Merge adjacent `<src, dst, len>` work units instead of splitting
    /// contiguous runs at `unit_size` boundaries.
    pub coalesce: bool,
    /// Dispatch strided-2D layouts (e.g. transposes) to the specialized
    /// arithmetic kernel instead of the descriptor-streaming DEV path.
    pub vector_dispatch: bool,
    /// Pick unit size / pipeline granularity analytically from the
    /// gpusim cost model instead of using the static defaults.
    pub autotune: bool,
}

impl OptimizerConfig {
    /// Every optimization on (the shipping default).
    pub fn enabled() -> OptimizerConfig {
        OptimizerConfig {
            canonicalize: true,
            coalesce: true,
            vector_dispatch: true,
            autotune: true,
        }
    }

    /// Every optimization off: bit-exact pre-optimizer behaviour.
    pub fn disabled() -> OptimizerConfig {
        OptimizerConfig {
            canonicalize: false,
            coalesce: false,
            vector_dispatch: false,
            autotune: false,
        }
    }

    /// [`OptimizerConfig::enabled`] with `GPU_DDT_*` env overrides
    /// applied (see the type-level docs for the variable list).
    pub fn from_env() -> OptimizerConfig {
        let mut cfg = match env_flag("GPU_DDT_OPT") {
            Some(false) => OptimizerConfig::disabled(),
            _ => OptimizerConfig::enabled(),
        };
        if let Some(v) = env_flag("GPU_DDT_CANON") {
            cfg.canonicalize = v;
        }
        if let Some(v) = env_flag("GPU_DDT_COALESCE") {
            cfg.coalesce = v;
        }
        if let Some(v) = env_flag("GPU_DDT_VECTOR") {
            cfg.vector_dispatch = v;
        }
        if let Some(v) = env_flag("GPU_DDT_TUNE") {
            cfg.autotune = v;
        }
        cfg
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::from_env()
    }
}

fn env_flag(name: &str) -> Option<bool> {
    let v = std::env::var(name).ok()?;
    Some(!matches!(
        v.to_ascii_lowercase().as_str(),
        "0" | "false" | "off" | "no"
    ))
}

/// Configuration of one pack/unpack job.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// CUDA-DEV work-unit size S in bytes. The paper requires a
    /// multiple of 256 (8 bytes × warp size) and uses 1–4 KB to give
    /// the unrolled kernel loop ILP headroom.
    pub unit_size: u64,
    /// Packed bytes converted per CPU pipeline step. Each step's units
    /// are handed to a kernel launch while the CPU converts the next
    /// step.
    pub pipeline_chunk: u64,
    /// Overlap CPU DEV preparation with kernel execution. Disabled
    /// reproduces the paper's non-pipelined baseline in Figure 7.
    pub pipeline: bool,
    /// CPU cost per CUDA-DEV entry produced (datatype traversal,
    /// splitting, filling `cuda_dev_dist` structs).
    pub prep_per_unit: SimTime,
    /// Fixed CPU cost per preparation batch (call overhead + copying
    /// the descriptor array to the device).
    pub prep_call: SimTime,
    /// Thread-block cap forwarded to kernel launches (None = full GPU).
    pub blocks: Option<u32>,
    /// Commit-time optimizer toggles (canonicalization, coalescing,
    /// strided dispatch, auto-tuning).
    pub optimizer: OptimizerConfig,
}

impl EngineConfig {
    /// Validate the unit size constraint from §3.2.
    pub fn validated(self) -> Self {
        assert!(
            self.unit_size >= 256 && self.unit_size.is_multiple_of(256),
            "CUDA-DEV unit size must be a positive multiple of 256 bytes, got {}",
            self.unit_size
        );
        assert!(self.pipeline_chunk >= self.unit_size);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            unit_size: 1024,
            pipeline_chunk: 1 << 20,
            pipeline: true,
            prep_per_unit: SimTime::from_nanos(12),
            prep_call: SimTime::from_micros(1),
            blocks: None,
            optimizer: OptimizerConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = EngineConfig::default().validated();
        assert_eq!(c.unit_size, 1024);
        assert!(c.pipeline);
    }

    #[test]
    #[should_panic(expected = "multiple of 256")]
    fn rejects_unaligned_unit() {
        let _ = EngineConfig {
            unit_size: 1000,
            ..Default::default()
        }
        .validated();
    }

    #[test]
    fn optimizer_presets() {
        let on = OptimizerConfig::enabled();
        assert!(on.canonicalize && on.coalesce && on.vector_dispatch && on.autotune);
        let off = OptimizerConfig::disabled();
        assert!(!off.canonicalize && !off.coalesce && !off.vector_dispatch && !off.autotune);
        assert_ne!(on, off);
    }
}
