//! Engine tuning knobs.

use simcore::SimTime;

/// Configuration of one pack/unpack job.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// CUDA-DEV work-unit size S in bytes. The paper requires a
    /// multiple of 256 (8 bytes × warp size) and uses 1–4 KB to give
    /// the unrolled kernel loop ILP headroom.
    pub unit_size: u64,
    /// Packed bytes converted per CPU pipeline step. Each step's units
    /// are handed to a kernel launch while the CPU converts the next
    /// step.
    pub pipeline_chunk: u64,
    /// Overlap CPU DEV preparation with kernel execution. Disabled
    /// reproduces the paper's non-pipelined baseline in Figure 7.
    pub pipeline: bool,
    /// CPU cost per CUDA-DEV entry produced (datatype traversal,
    /// splitting, filling `cuda_dev_dist` structs).
    pub prep_per_unit: SimTime,
    /// Fixed CPU cost per preparation batch (call overhead + copying
    /// the descriptor array to the device).
    pub prep_call: SimTime,
    /// Thread-block cap forwarded to kernel launches (None = full GPU).
    pub blocks: Option<u32>,
}

impl EngineConfig {
    /// Validate the unit size constraint from §3.2.
    pub fn validated(self) -> Self {
        assert!(
            self.unit_size >= 256 && self.unit_size.is_multiple_of(256),
            "CUDA-DEV unit size must be a positive multiple of 256 bytes, got {}",
            self.unit_size
        );
        assert!(self.pipeline_chunk >= self.unit_size);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            unit_size: 1024,
            pipeline_chunk: 1 << 20,
            pipeline: true,
            prep_per_unit: SimTime::from_nanos(12),
            prep_call: SimTime::from_micros(1),
            blocks: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = EngineConfig::default().validated();
        assert_eq!(c.unit_size, 1024);
        assert!(c.pipeline);
    }

    #[test]
    #[should_panic(expected = "multiple of 256")]
    fn rejects_unaligned_unit() {
        let _ = EngineConfig {
            unit_size: 1000,
            ..Default::default()
        }
        .validated();
    }
}
