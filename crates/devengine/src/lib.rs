//! The GPU datatype engine — the paper's primary contribution.
//!
//! Pack/unpack of non-contiguous GPU-resident data is split into two
//! stages exactly as in §3 of the paper:
//!
//! 1. **CPU stage** — the host walks the stack-based datatype and emits
//!    *Datatype Engine Vectors* (DEVs): `<source displacement, length,
//!    destination displacement>` tuples. Each DEV is then divided into
//!    equal-size *CUDA DEVs* (work units of S ∈ {1 KB, 2 KB, 4 KB},
//!    a multiple of 8 bytes × the 32-thread warp size) so every warp
//!    gets a balanced share.
//! 2. **GPU stage** — a single kernel grid-strides over the CUDA-DEV
//!    array and copies each unit (the general kernel), or computes the
//!    offsets arithmetically for vector-shaped types (the specialized
//!    vector kernel, which needs no descriptor array at all).
//!
//! The CPU stage is **pipelined** with kernel execution (convert a part,
//! launch, keep converting), and because the CUDA-DEV list depends only
//! on the datatype — not the buffer addresses — it is **cached** and
//! reused across messages ([`DevCache`]).

pub mod cache;
pub mod config;
pub mod dev;
pub mod engine;
pub mod tune;

pub use cache::DevCache;
pub use config::{EngineConfig, OptimizerConfig};
pub use dev::{
    build_plan, build_plan_opt, flip_units, flip_units_in_place, whole_units, DevCursor, DevPlan,
    SliceParts,
};
pub use engine::{pack_async, unpack_async, Direction, FragmentEngine};
