//! End-to-end audit tests: each seeded fixture tree must trip exactly
//! its analysis, the clean tree must pass, and the real workspace must
//! pass — which keeps the `lint/*.allow` audit ratchets honest under
//! `cargo test`. Also covers the JSON report round-trip and the
//! ratchet-direction check CI runs.

use std::path::PathBuf;

fn fixture(tree: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn kinds(report: &xtask::allow::RuleReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.kind).collect()
}

#[test]
fn charge_model_fixture_fires() {
    let out = xtask::run_audit(&fixture("audit-violations")).unwrap();
    let r = out.family("charge-model");
    let ks = kinds(r);
    for kind in ["tuner-blind", "sim-blind", "dead-const"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
    // `good_bw` is read by both sides and `name` is descriptive: three
    // findings exactly, keyed per field.
    assert_eq!(r.violations.len(), 3, "{:?}", r.violations);
    assert!(r.violations[0]
        .file
        .starts_with("crates/gpusim/src/spec.rs::"));
    assert!(!out.ok());
}

#[test]
fn fault_reach_fixture_fires() {
    let out = xtask::run_audit(&fixture("audit-violations")).unwrap();
    let r = out.family("fault-reach");
    // `bad_charge` is reachable with no consult on the path;
    // `inner_ok` sits below the consulting hop and must stay clean.
    assert_eq!(kinds(r), vec!["unguarded-charge"], "{:?}", r.violations);
    assert_eq!(r.violations[0].file, "crates/netsim/src/bad.rs");
    assert!(r.violations[0].msg.contains("bad_charge"));
    assert!(!r.violations.iter().any(|v| v.msg.contains("inner_ok")));
}

#[test]
fn counter_live_fixture_fires() {
    let out = xtask::run_audit(&fixture("audit-violations")).unwrap();
    let r = out.family("counter-live");
    let ks = kinds(r);
    for kind in ["unregistered-name", "dead-name", "metrics-chain"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
    assert!(r
        .violations
        .iter()
        .any(|v| v.kind == "dead-name" && v.file.ends_with("::DEAD_NAME")));
}

#[test]
fn unsafe_fixture_fires() {
    let out = xtask::run_audit(&fixture("audit-violations")).unwrap();
    let ks = kinds(out.family("unsafe"));
    for kind in ["unsanctioned-unsafe", "missing-safety"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
}

#[test]
fn clean_fixture_tree_is_clean() {
    let out = xtask::run_audit(&fixture("audit-clean")).unwrap();
    assert!(out.ok(), "clean tree failed:\n{}", out.render_text());
}

#[test]
fn workspace_audit_is_clean() {
    let root = xtask::workspace_root();
    let out = xtask::run_audit(&root).unwrap();
    assert!(
        out.files_scanned > 40 && out.fns_indexed > 500,
        "expected the simulator crates in the graph, got {} files / {} fns",
        out.files_scanned,
        out.fns_indexed
    );
    assert!(out.ok(), "workspace audit failed:\n{}", out.render_text());
}

#[test]
fn audit_json_report_round_trips() {
    let out = xtask::run_audit(&fixture("audit-violations")).unwrap();
    let text = xtask::report::render_json(&out.reports);
    let v = xtask::report::json::parse(&text).expect("report JSON parses");
    assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(out.ok()));
    let rules = v.get("rules").and_then(|r| r.as_obj()).unwrap();
    for family in xtask::audit::AUDIT_FAMILIES {
        let rep = rules
            .get(family)
            .unwrap_or_else(|| panic!("{family} missing"));
        let parsed = rep.get("violations").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(parsed.len(), out.family(family).violations.len());
    }
}

#[test]
fn ratchet_accepts_tightening_and_known_new_families() {
    let known = ["panic", "unsafe"];
    let errs = xtask::allow::ratchet_check(
        &fixture("ratchet/base"),
        &fixture("ratchet/tightened"),
        &known,
    )
    .unwrap();
    assert!(errs.is_empty(), "{errs:?}");
    // A family this binary defines may introduce its first allow file.
    let errs =
        xtask::allow::ratchet_check(&fixture("ratchet/base"), &fixture("ratchet/newfam"), &known)
            .unwrap();
    assert!(errs.is_empty(), "{errs:?}");
}

#[test]
fn ratchet_rejects_loosening_and_unknown_families() {
    let known = ["panic", "unsafe"];
    let errs = xtask::allow::ratchet_check(
        &fixture("ratchet/base"),
        &fixture("ratchet/loosened"),
        &known,
    )
    .unwrap();
    // One grown count (a.rs 2→3) and one new entry (c.rs).
    assert_eq!(errs.len(), 2, "{errs:?}");
    let errs =
        xtask::allow::ratchet_check(&fixture("ratchet/base"), &fixture("ratchet/rogue"), &known)
            .unwrap();
    assert_eq!(errs.len(), 1, "{errs:?}");
}
