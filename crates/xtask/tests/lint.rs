//! End-to-end lint tests: each seeded fixture tree must trip exactly
//! its rule family, and the real workspace must pass — which keeps the
//! `lint/*.allow` ratchets honest under `cargo test`.

use std::path::PathBuf;

fn fixture(tree: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn kinds(report: &xtask::allow::RuleReport) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.kind).collect()
}

#[test]
fn determinism_fixture_fires() {
    let out = xtask::run_lint(&fixture("violations")).unwrap();
    let ks = kinds(out.family("determinism"));
    for kind in ["hashmap", "wallclock", "sleep", "rand"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
    assert!(
        !ks.contains(&"hashset"),
        "the HashSet lives in #[cfg(test)] and must be exempt: {ks:?}"
    );
    assert!(!out.ok());
}

#[test]
fn panic_fixture_fires() {
    let out = xtask::run_lint(&fixture("violations")).unwrap();
    let ks = kinds(out.family("panic"));
    for kind in ["unwrap", "expect", "panic", "unreachable", "index"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
    assert!(!out.ok());
}

#[test]
fn fault_fixture_fires() {
    let out = xtask::run_lint(&fixture("violations")).unwrap();
    let r = out.family("fault");
    assert_eq!(kinds(r), vec!["reserve"]);
    assert_eq!(r.violations[0].file, "crates/netsim/src/bad_charge.rs");
}

#[test]
fn metrics_fixture_fires() {
    let out = xtask::run_lint(&fixture("violations")).unwrap();
    let ks = kinds(out.family("metrics"));
    // Two literals: the count name and the rogue span name. The
    // `names::CAT_GPUSIM` argument is a constant and must not fire.
    assert_eq!(ks, vec!["literal-name", "literal-name"]);
}

#[test]
fn offload_fixture_fires() {
    let out = xtask::run_lint(&fixture("violations")).unwrap();
    let ks = kinds(out.family("offload"));
    for kind in ["dev-exec", "graph-construct"] {
        assert!(ks.contains(&kind), "missing {kind} in {ks:?}");
    }
    assert!(!out.ok());
}

#[test]
fn stale_allowlist_entries_fail() {
    let out = xtask::run_lint(&fixture("stale")).unwrap();
    let r = out.family("panic");
    assert!(r.violations.is_empty(), "allowance covers the unwrap");
    assert_eq!(r.stale.len(), 2, "{:?}", r.stale);
    assert_eq!(r.suppressed, 1);
    assert!(!out.ok(), "stale entries alone must fail the lint");
}

#[test]
fn workspace_is_clean() {
    let root = xtask::workspace_root();
    let out = xtask::run_lint(&root).unwrap();
    assert!(
        out.files_scanned > 40,
        "expected to scan the simulator crates, got {}",
        out.files_scanned
    );
    assert!(out.ok(), "workspace lint failed:\n{}", out.render_text());
}
