//! Fixture trace-name registry.

pub mod names {
    pub const LIVE_BYTES: &str = "live.bytes";
    pub const DEAD_NAME: &str = "dead.name";
}

pub struct Metrics;

impl Metrics {
    pub fn from_trace(tr: &Trace) -> Metrics {
        Metrics
    }
}
