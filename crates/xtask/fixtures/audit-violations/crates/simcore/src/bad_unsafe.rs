//! Fixture undocumented unsafe outside the sanctioned modules.

pub fn poke(p: *mut u8) {
    unsafe { *p = 0 }
}
