//! Fixture spec tables for the charge-model analysis.

pub struct GpuSpec {
    pub name: u64,
    pub good_bw: u64,
    pub sim_only: u64,
    pub tuner_only: u64,
    pub dead_cost: u64,
}
