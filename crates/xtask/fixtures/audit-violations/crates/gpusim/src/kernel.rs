//! Fixture charge site (kernel.rs is a charge wrapper).

pub fn charge(spec: &GpuSpec, r: &mut Fifo, now: u64) {
    let cost = spec.good_bw + spec.sim_only;
    r.reserve(now, cost);
}
