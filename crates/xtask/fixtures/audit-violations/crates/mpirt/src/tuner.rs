//! Fixture tuner model.

pub fn gather(spec: &GpuSpec) -> u64 {
    spec.good_bw + spec.tuner_only
}
