//! Fixture protocol entry surface.

pub fn entry(sim: &mut Sim) {
    guarded_hop(sim);
    bad_charge(sim);
}

pub fn guarded_hop(sim: &mut Sim) {
    let verdict = fault_roll(sim, FaultOp::KernelLaunch);
    if verdict.is_fault() {
        return;
    }
    inner_ok(sim);
}
