//! Fixture session with a severed metrics chain.

pub fn metrics() -> u64 {
    0
}
