//! Fixture charges and trace emissions.

pub fn bad_charge(sim: &mut Sim) {
    sim.link.reserve(sim.now, sim.cost);
}

pub fn inner_ok(sim: &mut Sim) {
    sim.link.reserve(sim.now, sim.cost);
}

pub fn emits(tr: &mut Trace) {
    tr.count(names::LIVE_BYTES, 0, 0, 1);
    tr.count(names::ROGUE_NAME, 0, 0, 1);
}
