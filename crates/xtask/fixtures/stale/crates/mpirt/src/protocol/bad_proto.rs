//! Companion to `fixtures/stale/lint/panic.allow`: the allowlist grants
//! three unwraps but only one exists, so the stale-ratchet check must
//! fail even though no finding exceeds its allowance.

pub fn one_unwrap(v: &[u64]) -> u64 {
    *v.first().unwrap()
}
