//! Seeded determinism violations: RandomState containers and
//! wall-clock reads in a simulator crate. Never compiled — scanned by
//! the xtask self-tests to prove the rule fires.

use std::collections::HashMap;
use std::time::Instant;

pub fn entropy_everywhere() -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(1, 2);
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let r = random();
    t0.elapsed().as_nanos() as u64 + r + m.len() as u64
}

#[cfg(test)]
mod tests {
    // Exempt: a HashSet inside a test region must NOT fire.
    use std::collections::HashSet;

    #[test]
    fn test_side_sets_are_fine() {
        let s: HashSet<u32> = HashSet::new();
        assert!(s.is_empty());
    }
}
