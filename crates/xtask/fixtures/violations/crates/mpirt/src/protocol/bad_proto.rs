//! Seeded panic-freedom violations in a protocol path: unwrap, expect,
//! panicking macros, and the indexing shorthand. Never compiled —
//! scanned by the xtask self-tests to prove the rule fires.

pub fn risky(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    let second = v.get(1).copied().expect("protocol always has two slots");
    if *first == u64::MAX {
        panic!("impossible header");
    }
    match second {
        0 => unreachable!("zero slot"),
        _ => v[2] + first + second,
    }
}
