// Seeded offload-family violations: a rogue DEV interpreter walking
// descriptors outside the sanctioned executors, and a hand-assembled
// stream-op graph bypassing the capture API.

fn rogue_walk(ty: &DataType) {
    let mut cur = DevCursor::new(ty, 1, 256).ok();
    let mut units = Vec::new();
    cur.next_units_into(64, &mut units);
}

fn rogue_graph() {
    let mut ops = Vec::new();
    ops.push(StreamOp::Trigger);
}
