//! Seeded fault-coverage violation: a raw `.reserve(` charge outside
//! the wrapper layer, where the fault injector cannot interpose. Never
//! compiled — scanned by the xtask self-tests to prove the rule fires.

pub fn sneak_charge(link: &mut FifoResource, now: SimTime, bytes: u64) -> SimTime {
    let (_start, end) = link.reserve(now, bytes * 8);
    end
}
