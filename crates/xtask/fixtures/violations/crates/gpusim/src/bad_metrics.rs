//! Seeded metrics-coherence violation: an inline counter-name literal
//! instead of a `simcore::trace::names` constant. Never compiled —
//! scanned by the xtask self-tests to prove the rule fires.

pub fn emit(sim: &mut Sim<World>, from: u32, to: u32, n: u64) {
    sim.trace.count("gpusim.rogue.bytes", from, to, n);
    let span = sim
        .trace
        .span_begin(sim.now(), names::CAT_GPUSIM, "rogue.span", Track::Gpu(0));
    sim.trace.span_end(sim.now(), span);
}
