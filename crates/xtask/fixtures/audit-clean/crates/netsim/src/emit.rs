//! Fixture emission site for the registered name.

pub fn emits(tr: &mut Trace) {
    tr.count(names::LIVE_BYTES, 0, 0, 1);
}
