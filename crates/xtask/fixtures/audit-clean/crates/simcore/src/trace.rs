//! Fixture trace-name registry, every name live.

pub mod names {
    pub const LIVE_BYTES: &str = "live.bytes";
}

pub struct Metrics;

impl Metrics {
    pub fn from_trace(tr: &Trace) -> Metrics {
        Metrics
    }
}
