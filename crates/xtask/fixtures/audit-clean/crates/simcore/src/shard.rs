//! Fixture documented unsafe in a sanctioned module.

pub fn poke(p: *mut u8) {
    // SAFETY: the caller guarantees `p` is valid and exclusively owned.
    unsafe { *p = 0 }
}
