//! Fixture spec tables, fully coherent.

pub struct GpuSpec {
    pub name: u64,
    pub good_bw: u64,
}
