//! Fixture charge site reading the modeled constant.

pub fn charge(spec: &GpuSpec, r: &mut Fifo, now: u64) {
    let cost = spec.good_bw;
    r.reserve(now, cost);
}
