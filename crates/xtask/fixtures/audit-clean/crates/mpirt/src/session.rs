//! Fixture session whose metrics chain is intact.

pub fn metrics(tr: &Trace) -> Metrics {
    Metrics::from_trace(tr)
}
