//! Fixture tuner model reading the charged constant.

pub fn gather(spec: &GpuSpec) -> u64 {
    spec.good_bw
}
