//! Fixture protocol entry: the charge sits below a fault consult.

pub fn entry(sim: &mut Sim) {
    let verdict = fault_roll(sim, FaultOp::KernelLaunch);
    if verdict.is_fault() {
        return;
    }
    charge(sim.spec, sim.fifo, sim.now);
}
