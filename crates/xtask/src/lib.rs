//! `cargo xtask lint` — the workspace invariant checker.
//!
//! Eight static rule families guard properties the test suite can only
//! sample but the source can prove by absence:
//!
//! 1. **determinism** — no `RandomState` hash containers in simulator
//!    crates, no wall-clock/entropy reads outside the measurement
//!    harnesses;
//! 2. **panic** — protocol state machines and runtime paths surface
//!    typed errors instead of panicking;
//! 3. **fault** — every simulated-time charge goes through the wrapper
//!    layer the fault injector interposes on;
//! 4. **metrics** — trace counter/span names come from the
//!    `simcore::trace::names` registry, never inline literals;
//! 5. **arch** — per-architecture constants come from the `GpuArch`
//!    registry, never hardcoded constructors;
//! 6. **sched** — the calendar queue + event arena in
//!    `simcore/src/event.rs` are the only event queue: no shadow
//!    `BinaryHeap`s, no hand-boxed closures in `schedule_*` calls;
//! 7. **shard** — shard-model code crosses shard boundaries only
//!    through the stamped mailbox API (`ShardCtx::send`), and the
//!    simulator crates hold no shared-mutable statics outside the
//!    pool layers in `simcore/src/shard.rs` and `simcore/src/par.rs`;
//! 8. **offload** — DEV descriptor programs execute only in the
//!    sanctioned interpreters (devengine, the NIC executor, the CPU
//!    convertor, the MPI-IO file-view walker), and stream-op graphs are
//!    built only through gpusim's `GraphCapture` API.
//!
//! Each family reconciles its findings against a ratchet allowlist in
//! `lint/<family>.allow` (see [`allow`]); stale entries fail the lint
//! so the ratchet only tightens. See DESIGN.md §11.

pub mod allow;
pub mod audit;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;

use allow::RuleReport;
use std::io;
use std::path::{Path, PathBuf};

/// The reconciled result of linting one tree.
#[derive(Debug)]
pub struct LintOutcome {
    /// One report per family, in [`rules::FAMILIES`] order.
    pub reports: Vec<RuleReport>,
    /// How many files the scanner actually read.
    pub files_scanned: usize,
}

impl LintOutcome {
    pub fn ok(&self) -> bool {
        self.reports.iter().all(|r| r.ok())
    }

    /// The report for one family; panics only on a misspelled family
    /// name, which is a bug in the caller (tests), not input-dependent.
    pub fn family(&self, name: &str) -> &RuleReport {
        self.reports
            .iter()
            .find(|r| r.family == name)
            .unwrap_or_else(|| panic!("unknown rule family {name:?}"))
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render_text());
        }
        out
    }
}

/// Recursively collect `.rs` files under `root/crates`, returning
/// sorted workspace-relative paths (forward slashes) so the scan order
/// — and therefore every report — is deterministic.
fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        walk(&crates, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target` is build output; `fixtures` holds the seeded
            // violation trees for the lint's own tests.
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Lint the workspace rooted at `root`: scan, then reconcile each
/// family against `root/lint/<family>.allow`.
pub fn run_lint(root: &Path) -> io::Result<LintOutcome> {
    let mut found = Vec::new();
    let mut files_scanned = 0usize;
    for rel in collect_rs_files(root)? {
        if !rules::any_scope(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))?;
        let toks = lexer::lex(&src);
        rules::scan_file(&rel, &toks, &mut found);
        files_scanned += 1;
    }
    let mut reports = Vec::new();
    for family in rules::FAMILIES {
        let mine: Vec<rules::Violation> = found
            .iter()
            .filter(|v| v.family == family)
            .cloned()
            .collect();
        let allowlist = allow::AllowList::load(&root.join("lint").join(format!("{family}.allow")))?;
        reports.push(allow::apply(family, mine, &allowlist));
    }
    Ok(LintOutcome {
        reports,
        files_scanned,
    })
}

/// The reconciled result of auditing one tree.
#[derive(Debug)]
pub struct AuditOutcome {
    /// One report per analysis, in [`audit::AUDIT_FAMILIES`] order.
    pub reports: Vec<RuleReport>,
    pub files_scanned: usize,
    /// Size of the item table the call graph was built from.
    pub fns_indexed: usize,
}

impl AuditOutcome {
    pub fn ok(&self) -> bool {
        self.reports.iter().all(|r| r.ok())
    }

    /// The report for one analysis; panics only on a misspelled family
    /// name, which is a bug in the caller (tests), not input-dependent.
    pub fn family(&self, name: &str) -> &RuleReport {
        self.reports
            .iter()
            .find(|r| r.family == name)
            .unwrap_or_else(|| panic!("unknown audit family {name:?}"))
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render_text());
        }
        out
    }
}

/// Audit the workspace rooted at `root`: build the item table and call
/// graph over every crate source file, run the four semantic analyses,
/// then reconcile each against `root/lint/<family>.allow`.
pub fn run_audit(root: &Path) -> io::Result<AuditOutcome> {
    let mut files = Vec::new();
    for rel in collect_rs_files(root)? {
        // The audit reasons about shipped code only: integration tests
        // and benches are whole files of test code the lexer cannot
        // mark, so including them would count test-only emissions and
        // calls as live paths.
        if !rel.contains("/src/") {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))?;
        let toks = lexer::lex(&src);
        files.push(audit::FileData { rel, src, toks });
    }
    let graph = audit::build_graph(&files);
    let fns_indexed = graph.nodes.len();
    let found = audit::analyze(&files, &graph);
    let mut reports = Vec::new();
    for family in audit::AUDIT_FAMILIES {
        let mine: Vec<rules::Violation> = found
            .iter()
            .filter(|v| v.family == family)
            .cloned()
            .collect();
        let allowlist = allow::AllowList::load(&root.join("lint").join(format!("{family}.allow")))?;
        reports.push(allow::apply(family, mine, &allowlist));
    }
    Ok(AuditOutcome {
        reports,
        files_scanned: files.len(),
        fns_indexed,
    })
}

/// The workspace root when running via `cargo xtask` / `cargo test`:
/// two levels up from this crate's manifest.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}
