//! The approximate call graph: the audit layer's middle tier.
//!
//! [`crate::lexer::extract_fns`] gives the item table; this module
//! derives per-function facts (calls made, fields read, trace-registry
//! uses, `.reserve(` charge sites, idents mentioned) and links calls to
//! definitions *by bare name*. That resolution is deliberately
//! unsound-free in one direction only: a call edge may point at several
//! same-named functions in different files (over-approximation), but a
//! call to a function we have the source of is never missed. Audit
//! analyses built on top therefore over-report reachability and must
//! never be used to prove the *absence* of a path — only that every
//! path they do see satisfies an invariant. See DESIGN.md §16.

use crate::lexer::{extract_fns, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Rust keywords and control-flow idents that look like calls when
/// followed by `(` — e.g. `if (..)`, `match (..)`, `return (..)`.
const NON_CALL_IDENTS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "unsafe", "else", "as", "in",
    "let", "mut", "ref", "await",
];

/// One `fn` item plus the facts the analyses consume.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub name: String,
    pub line: u32,
    pub in_test: bool,
    /// Bare names of every call made in the body (`foo(`, `x.foo(`,
    /// `a::b::foo(`), deduplicated.
    pub calls: BTreeSet<String>,
    /// Field reads: `.ident` not followed by `(`.
    pub field_reads: BTreeSet<String>,
    /// Every ident mentioned anywhere in the body.
    pub mentions: BTreeSet<String>,
    /// Lines of `.reserve(` method calls — the simulated-time charges.
    pub reserve_lines: Vec<u32>,
    /// Trace-registry uses inside `.count(` / `.span_at(` / … calls:
    /// `(method, CONST_NAME, line)` for each `names::CONST_NAME` arg.
    pub trace_uses: Vec<(String, String, u32)>,
    /// Every `names::CONST` path mentioned anywhere in the body — the
    /// counter-liveness analysis uses these to credit emission through
    /// indirection (`let ctr = match dir { names::A, .. }; count(ctr)`).
    pub names_refs: BTreeSet<String>,
}

/// The whole-workspace graph: nodes plus a name → node-indices index
/// used for approximate call resolution.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build from pre-lexed files (`(workspace-relative path, tokens)`).
    pub fn build<'a>(files: impl IntoIterator<Item = (&'a str, &'a [Token])>) -> Self {
        let mut g = CallGraph::default();
        for (rel, toks) in files {
            for span in extract_fns(toks) {
                let body = &toks[span.body.clone()];
                let mut node = FnNode {
                    file: rel.to_string(),
                    name: span.name,
                    line: span.line,
                    in_test: span.in_test,
                    calls: BTreeSet::new(),
                    field_reads: BTreeSet::new(),
                    mentions: BTreeSet::new(),
                    reserve_lines: Vec::new(),
                    trace_uses: Vec::new(),
                    names_refs: BTreeSet::new(),
                };
                scan_body(body, &mut node);
                g.by_name
                    .entry(node.name.clone())
                    .or_default()
                    .push(g.nodes.len());
                g.nodes.push(node);
            }
        }
        g
    }

    /// Node indices whose definitions carry this bare name.
    pub fn defs_of(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Forward reachability from `roots` over name-resolved call edges.
    pub fn reachable(&self, roots: impl IntoIterator<Item = usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.into_iter().collect();
        let mut work: Vec<usize> = seen.iter().copied().collect();
        while let Some(i) = work.pop() {
            for callee in &self.nodes[i].calls {
                for &j in self.defs_of(callee) {
                    if seen.insert(j) {
                        work.push(j);
                    }
                }
            }
        }
        seen
    }

    /// Reachability that stops descending at protected nodes: a node
    /// for which `protected` returns true is recorded as visited but
    /// its callees are not expanded. The result maps each *unprotected*
    /// reached node to the index of the caller it was first reached
    /// from (roots map to themselves), so violations can print a path.
    pub fn reachable_unprotected(
        &self,
        roots: impl IntoIterator<Item = usize>,
        protected: impl Fn(&FnNode) -> bool,
    ) -> BTreeMap<usize, usize> {
        self.reachable_unprotected_filtered(roots, protected, |_, _| true)
    }

    /// [`Self::reachable_unprotected`] with an edge filter: an edge to
    /// a definition of `name` is followed only when
    /// `edge_ok(name, callee)` holds. Analyses use this to trim the
    /// worst name-collision fan-out (ubiquitous method names resolving
    /// to unrelated definitions) without touching the node facts.
    pub fn reachable_unprotected_filtered(
        &self,
        roots: impl IntoIterator<Item = usize>,
        protected: impl Fn(&FnNode) -> bool,
        edge_ok: impl Fn(&str, &FnNode) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut work: Vec<usize> = Vec::new();
        for r in roots {
            if !protected(&self.nodes[r]) && !parent.contains_key(&r) {
                parent.insert(r, r);
                work.push(r);
            }
        }
        while let Some(i) = work.pop() {
            for callee in &self.nodes[i].calls {
                for &j in self.defs_of(callee) {
                    if parent.contains_key(&j)
                        || protected(&self.nodes[j])
                        || !edge_ok(callee, &self.nodes[j])
                    {
                        continue;
                    }
                    parent.insert(j, i);
                    work.push(j);
                }
            }
        }
        parent
    }

    /// Render the root→node call chain recorded by
    /// [`Self::reachable_unprotected`], e.g. `start_rendezvous → stage → charge`.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, mut i: usize) -> String {
        let mut names = vec![self.nodes[i].name.clone()];
        while let Some(&p) = parent.get(&i) {
            if p == i {
                break;
            }
            names.push(self.nodes[p].name.clone());
            i = p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

fn scan_body(body: &[Token], node: &mut FnNode) {
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if let Some(id) = t.ident() {
            node.mentions.insert(id.to_string());
            if id == "names"
                && body.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(c) = body.get(i + 3).and_then(|n| n.ident()) {
                    node.names_refs.insert(c.to_string());
                }
            }
            let next_open = body.get(i + 1).is_some_and(|n| n.is_punct('('));
            let is_macro = body.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let after_dot = i > 0 && body[i - 1].is_punct('.');
            let after_dotdot = after_dot && i > 1 && body[i - 2].is_punct('.');
            if next_open && !is_macro && !NON_CALL_IDENTS.contains(&id) {
                node.calls.insert(id.to_string());
                if after_dot && id == "reserve" {
                    node.reserve_lines.push(t.line);
                }
                if after_dot && crate::rules::TRACE_METHODS.contains(&id) {
                    collect_trace_args(body, i + 1, id, node);
                }
            } else if after_dot && !after_dotdot && !next_open && !is_macro {
                node.field_reads.insert(id.to_string());
            }
        }
        i += 1;
    }
}

/// Walk the argument list starting at the `(` token index, collecting
/// every `names :: CONST` path as a trace-registry use of `method`.
fn collect_trace_args(body: &[Token], open: usize, method: &str, node: &mut FnNode) {
    let mut depth = 0usize;
    let mut i = open;
    while i < body.len() {
        let t = &body[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return;
            }
        } else if t.is_ident("names")
            && body.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            if let Some(name) = body.get(i + 3).and_then(|n| n.ident()) {
                node.trace_uses
                    .push((method.to_string(), name.to_string(), t.line));
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<(&str, Vec<Token>)> =
            files.iter().map(|(rel, src)| (*rel, lex(src))).collect();
        CallGraph::build(lexed.iter().map(|(rel, toks)| (*rel, toks.as_slice())))
    }

    #[test]
    fn calls_fields_and_reserves_are_extracted() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            fn outer(x: &Spec) -> u64 {
                let v = x.transaction_bytes + helper(x.warp_size);
                let (s, e) = res.reserve(now, dur);
                if cond(v) { return v; }
                v
            }
            fn helper(w: u64) -> u64 { w }
            "#,
        )]);
        let outer = &g.nodes[g.defs_of("outer")[0]];
        assert!(outer.calls.contains("helper"));
        assert!(outer.calls.contains("cond"));
        assert!(outer.field_reads.contains("transaction_bytes"));
        assert!(outer.field_reads.contains("warp_size"));
        assert!(!outer.field_reads.contains("helper"));
        assert_eq!(outer.reserve_lines.len(), 1);
    }

    #[test]
    fn range_idents_are_not_field_reads() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f(n: usize) { for i in 0..n { let _ = i; } }",
        )]);
        let f = &g.nodes[g.defs_of("f")[0]];
        assert!(!f.field_reads.contains("n"));
    }

    #[test]
    fn reachability_stops_at_protected_nodes() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            fn entry() { guarded(); open(); }
            fn guarded() { let _ = fault_roll(); below_guard(); }
            fn below_guard() { charge(); }
            fn open() { charge(); }
            fn charge() { let (s, e) = r.reserve(a, b); }
            "#,
        )]);
        let roots = g.defs_of("entry").to_vec();
        let parent = g.reachable_unprotected(roots, |n| n.mentions.contains("fault_roll"));
        let charge = g.defs_of("charge")[0];
        let below = g.defs_of("below_guard")[0];
        assert!(parent.contains_key(&charge), "open path reaches charge");
        assert!(
            !parent.contains_key(&below),
            "guarded subtree is not expanded"
        );
        let chain = g.chain(&parent, charge);
        assert!(chain.starts_with("entry"), "chain was {chain}");
    }

    #[test]
    fn trace_registry_uses_are_collected() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            fn f(sim: &mut Sim) {
                sim.trace.count(names::GOOD, 1);
                sim.trace.span_at(names::CAT_X, names::SPAN_Y, t, d, Track::Cpu);
                let v = sim.trace.counter(names::READ_ONLY);
            }
            "#,
        )]);
        let f = &g.nodes[g.defs_of("f")[0]];
        let methods: Vec<&str> = f.trace_uses.iter().map(|(m, _, _)| m.as_str()).collect();
        assert!(methods.contains(&"count"));
        assert!(methods.contains(&"span_at"));
        assert!(methods.contains(&"counter"));
        let names: Vec<&str> = f.trace_uses.iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, ["GOOD", "CAT_X", "SPAN_Y", "READ_ONLY"]);
    }
}
