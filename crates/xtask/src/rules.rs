//! The eight invariant rule families.
//!
//! Every rule walks the token stream of one file (test regions already
//! marked by the lexer) and emits [`Violation`]s. Scopes are path
//! prefixes relative to the workspace root, so the same rules run
//! unchanged over the seeded fixture trees used by the self-tests.

use crate::lexer::Token;

/// Rule family identifiers; one ratchet allowlist file exists per
/// family under `lint/<family>.allow`.
pub const FAMILIES: [&str; 8] = [
    "determinism",
    "panic",
    "fault",
    "metrics",
    "arch",
    "sched",
    "shard",
    "offload",
];

/// One finding, before allowlist reconciliation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub family: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub line: u32,
    /// Stable kind used as the allowlist key (`hashmap`, `unwrap`, …).
    pub kind: &'static str,
    pub msg: String,
}

/// The simulator crates: everything that executes under virtual time
/// and must replay bit-identically from a seed.
pub const SIM_CRATES: [&str; 7] = [
    "simcore",
    "memsim",
    "gpusim",
    "netsim",
    "devengine",
    "mpirt",
    "faultsim",
];

/// Crates where wall-clock reads are legitimate (they *measure* real
/// time) or that host this linter itself.
const WALLCLOCK_EXEMPT_CRATES: [&str; 2] = ["bench", "xtask"];

/// Modules allowed to call `.reserve(` — the FIFO-resource wrapper
/// layer. Every other call site would charge simulated time without
/// going through a wrapper that the fault injector can interpose on.
pub const CHARGE_WRAPPERS: [&str; 12] = [
    "crates/simcore/src/resource.rs", // defines FifoResource::reserve
    "crates/netsim/src/channel.rs",
    "crates/netsim/src/am.rs",
    "crates/netsim/src/wire.rs",
    "crates/netsim/src/rdma.rs",
    "crates/gpusim/src/kernel.rs",
    "crates/gpusim/src/copy.rs",
    "crates/gpusim/src/system.rs",
    "crates/gpusim/src/stream_trigger.rs", // capture/replay/graph-kernel charges
    "crates/mpirt/src/cpupack.rs",
    "crates/mpirt/src/io.rs",
    "crates/devengine/src/engine.rs",
];

/// The sanctioned DEV-program interpreters: modules allowed to walk
/// datatype descriptor programs with the `DevCursor` machinery. A
/// trailing `/` entry sanctions a whole crate. Everywhere else builds
/// on the wrapped walks (`whole_units`, `flip_units`, the engines) so
/// each executor charges time and faults at exactly one layer.
const DEV_EXECUTORS: [&str; 4] = [
    "crates/devengine/",           // defines the cursor + fragment engine
    "crates/netsim/src/nic.rs",    // NIC packet-processor executor
    "crates/mpirt/src/cpupack.rs", // host CPU convertor
    "crates/mpirt/src/io.rs",      // MPI-IO file-view walker
];

/// The stream-op graph capture API: the one module allowed to name the
/// graph node type. Everyone else records graphs through
/// `GraphCapture`, so capture-time charging cannot be bypassed by
/// hand-assembling op lists.
const GRAPH_CAPTURE: &str = "crates/gpusim/src/stream_trigger.rs";

/// Trace methods whose name arguments must come from
/// `simcore::trace::names`, never inline literals.
pub const TRACE_METHODS: [&str; 6] = [
    "count",
    "count_to",
    "counter",
    "instant",
    "span_begin",
    "span_at",
];

pub fn in_crate_src(rel: &str, krate: &str) -> bool {
    rel.strip_prefix("crates/")
        .and_then(|r| r.strip_prefix(krate))
        .is_some_and(|r| r.starts_with("/src/"))
}

pub fn in_sim_crates(rel: &str) -> bool {
    SIM_CRATES.iter().any(|c| in_crate_src(rel, c))
}

/// Determinism scope: HashMap/HashSet bans apply to the simulator
/// crates; wall-clock bans apply to every crate except the measurement
/// harnesses.
fn determinism_wallclock_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !WALLCLOCK_EXEMPT_CRATES.iter().any(|c| in_crate_src(rel, c))
}

/// Panic-freedom scope: the rendezvous/eager protocol state machines,
/// connection establishment, and the netsim/gpusim runtime paths.
fn panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/mpirt/src/protocol/")
        || rel == "crates/mpirt/src/connection.rs"
        || rel.starts_with("crates/netsim/src/")
        || rel.starts_with("crates/gpusim/src/")
}

/// Arch-registry scope: every crate source file except the calibration
/// tables themselves. `gpusim/src/spec.rs` is the single place the raw
/// per-architecture constructors are defined; everywhere else must go
/// through the `GpuArch` registry so `--arch` actually re-parameterizes
/// the whole stack.
fn arch_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/") && rel != "crates/gpusim/src/spec.rs"
}

/// Scheduler-hygiene scope: the simulator crates, minus the scheduler
/// itself. `simcore/src/event.rs` owns the calendar queue and the event
/// arena; a `BinaryHeap` event queue or a per-event `Box::new` anywhere
/// else reintroduces exactly the allocation and ordering costs the
/// arena exists to remove.
fn sched_scope(rel: &str) -> bool {
    in_sim_crates(rel) && rel != "crates/simcore/src/event.rs"
}

/// Shard-hygiene scope: the simulator crates, minus the shard engine
/// itself. `simcore/src/shard.rs` owns the mailboxes, the worker pool,
/// and the per-shard `Sim` bridge — it is the one module allowed to
/// schedule on behalf of a shard or hold shared-mutable state.
fn shard_scope(rel: &str) -> bool {
    in_sim_crates(rel) && rel != "crates/simcore/src/shard.rs"
}

/// True when any rule family wants to see this file.
pub fn any_scope(rel: &str) -> bool {
    in_sim_crates(rel) || determinism_wallclock_scope(rel) || panic_scope(rel) || arch_scope(rel)
}

/// Run every applicable family over one file.
pub fn scan_file(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if in_sim_crates(rel) || determinism_wallclock_scope(rel) {
        scan_determinism(rel, toks, out);
    }
    if panic_scope(rel) {
        scan_panic(rel, toks, out);
    }
    if in_sim_crates(rel) {
        scan_fault(rel, toks, out);
        scan_metrics(rel, toks, out);
    }
    if arch_scope(rel) {
        scan_arch(rel, toks, out);
    }
    if sched_scope(rel) {
        scan_sched(rel, toks, out);
    }
    if shard_scope(rel) {
        scan_shard(rel, toks, out);
    }
    if in_sim_crates(rel) {
        scan_offload(rel, toks, out);
    }
}

fn push(
    out: &mut Vec<Violation>,
    family: &'static str,
    rel: &str,
    line: u32,
    kind: &'static str,
    msg: String,
) {
    out.push(Violation {
        family,
        file: rel.to_string(),
        line,
        kind,
        msg,
    });
}

/// Family 1 — determinism: no default-`RandomState` hash containers in
/// simulator crates (iteration order must be stable across processes),
/// and no wall-clock or OS-entropy reads anywhere outside the
/// measurement harnesses.
fn scan_determinism(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    let hash_scope = in_sim_crates(rel);
    let clock_scope = determinism_wallclock_scope(rel);
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if hash_scope && (id == "HashMap" || id == "HashSet") {
            let kind = if id == "HashMap" {
                "hashmap"
            } else {
                "hashset"
            };
            push(
                out,
                "determinism",
                rel,
                t.line,
                kind,
                format!("std::collections::{id} iterates in RandomState order; use BTreeMap/BTreeSet or simcore::hash::Det{id}"),
            );
        }
        if !clock_scope {
            continue;
        }
        match id {
            "Instant" if follows_path_call(toks, i, "now") => push(
                out,
                "determinism",
                rel,
                t.line,
                "wallclock",
                "Instant::now() reads the wall clock; simulated time comes from Sim::now()"
                    .to_string(),
            ),
            "SystemTime" => push(
                out,
                "determinism",
                rel,
                t.line,
                "wallclock",
                "SystemTime reads the wall clock; simulated time comes from Sim::now()".to_string(),
            ),
            "sleep" => push(
                out,
                "determinism",
                rel,
                t.line,
                "sleep",
                "thread::sleep blocks on real time; schedule a simulated delay instead".to_string(),
            ),
            "thread_rng" | "from_entropy" | "random" => push(
                out,
                "determinism",
                rel,
                t.line,
                "rand",
                format!("`{id}` draws OS entropy; use the seeded simcore::rng::Rng"),
            ),
            _ => {}
        }
    }
}

/// `toks[i]` is an ident; true when it is followed by `::name(`.
fn follows_path_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Family 2 — panic-freedom: runtime protocol paths must surface typed
/// errors, not abort the simulation. Bans `.unwrap()`, `.expect(`,
/// the panicking macros, and the `x[i]` indexing shorthand.
fn scan_panic(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if let Some(id) = t.ident() {
            let method = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if method && (id == "unwrap" || id == "expect") {
                let kind = if id == "unwrap" { "unwrap" } else { "expect" };
                push(
                    out,
                    "panic",
                    rel,
                    t.line,
                    kind,
                    format!(".{id}() panics on Err/None; propagate a typed MpiError/NetError"),
                );
            }
            let bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            if bang {
                let kind = match id {
                    "panic" => Some("panic"),
                    "unreachable" => Some("unreachable"),
                    "todo" => Some("todo"),
                    "unimplemented" => Some("unimplemented"),
                    _ => None,
                };
                if let Some(kind) = kind {
                    push(
                        out,
                        "panic",
                        rel,
                        t.line,
                        kind,
                        format!("{id}! aborts the simulation; return a typed error instead"),
                    );
                }
            }
        }
        // Indexing shorthand: `[` directly after an expression tail.
        if t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let expr_tail = prev.ident().is_some() || prev.is_punct(')') || prev.is_punct(']');
            // `#[attr]` and macro brackets never match: prev is `#`/`!`.
            if expr_tail {
                push(
                    out,
                    "panic",
                    rel,
                    t.line,
                    "index",
                    "indexing shorthand panics out of bounds; use .get()/.first() or a checked accessor".to_string(),
                );
            }
        }
    }
}

/// Family 3 — fault coverage: every simulated-time charge must go
/// through a wrapper module the fault injector can interpose on; raw
/// `.reserve(` calls elsewhere bypass fault injection entirely.
fn scan_fault(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if CHARGE_WRAPPERS.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_ident("reserve")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                "fault",
                rel,
                t.line,
                "reserve",
                "raw .reserve( charge outside the wrapper layer bypasses fault injection"
                    .to_string(),
            );
        }
    }
}

/// Family 4 — metrics coherence: counter/span name arguments must be
/// the constants in `simcore::trace::names`, never inline string
/// literals, so the analysis tooling and the emitters cannot drift.
fn scan_metrics(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    // The registry itself is the one place literals are defined.
    if rel == "crates/simcore/src/trace.rs" {
        return;
    }
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let is_call = !t.in_test
            && t.ident().is_some_and(|id| TRACE_METHODS.contains(&id))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_call {
            i += 1;
            continue;
        }
        let method = t.ident().unwrap_or_default().to_string();
        // Walk the argument list to the matching ')'.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                depth += 1;
            } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(s) = a.str_lit() {
                push(
                    out,
                    "metrics",
                    rel,
                    a.line,
                    "literal-name",
                    format!(
                        "inline name {s:?} in .{method}(); use a simcore::trace::names constant"
                    ),
                );
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Family 5 — single-source arch constants: hardcoded calls to the
/// per-architecture spec/topology constructors (`k40()`, `psg_node()`,
/// `p100()`, …) outside `gpusim/src/spec.rs` and test regions bypass
/// the `GpuArch` registry and silently pin a code path to one testbed.
fn scan_arch(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    const CONSTRUCTORS: [(&str, &str); 8] = [
        ("k40", "k40"),
        ("p100", "p100"),
        ("v100", "v100"),
        ("a100", "a100"),
        ("psg_node", "psg_node"),
        ("dgx1_p100_node", "dgx_node"),
        ("dgx1v_node", "dgx_node"),
        ("dgxa100_node", "dgx_node"),
    ];
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let Some((_, kind)) = CONSTRUCTORS.iter().find(|(name, _)| *name == id) else {
            continue;
        };
        // Only the call form `name(` counts; `GpuSpec::k40` as a fn
        // pointer (how the registry itself references the constructors)
        // and the slug string "k40" stay legal.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            push(
                out,
                "arch",
                rel,
                t.line,
                kind,
                format!(
                    "hardcoded `{id}()` bypasses the GpuArch registry; use \
                     GpuArch::named(..)/default_arch() (raw constants live only in \
                     gpusim/src/spec.rs)"
                ),
            );
        }
    }
}

/// Family 6 — scheduler hygiene: the calendar queue + event arena in
/// `simcore/src/event.rs` are the only sanctioned event queue. Bans
/// `BinaryHeap` (a shadow priority queue would fork the `(time, seq)`
/// total order the determinism suite pins) and `Box::new` inside a
/// `schedule_at`/`schedule_in`/`schedule_now` argument list (events are
/// arena-allocated; hand-boxing a closure re-adds the per-event heap
/// round-trip the slab removed).
fn scan_sched(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    const SCHEDULE_METHODS: [&str; 3] = ["schedule_at", "schedule_in", "schedule_now"];
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_test {
            i += 1;
            continue;
        }
        if t.ident() == Some("BinaryHeap") {
            push(
                out,
                "sched",
                rel,
                t.line,
                "binary-heap",
                "BinaryHeap event queues fork the scheduler's (time, seq) total order; \
                 schedule through simcore::Sim (the calendar queue in simcore/src/event.rs)"
                    .to_string(),
            );
            i += 1;
            continue;
        }
        let is_schedule_call = t.ident().is_some_and(|id| SCHEDULE_METHODS.contains(&id))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_schedule_call {
            i += 1;
            continue;
        }
        let method = t.ident().unwrap_or_default().to_string();
        // Walk the argument list to the matching ')'.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                depth += 1;
            } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.ident() == Some("Box") && follows_path_call(toks, j, "new") {
                push(
                    out,
                    "sched",
                    rel,
                    a.line,
                    "boxed-event",
                    format!(
                        "Box::new in .{method}(); events are arena-allocated — pass the \
                         closure directly and let the slab place it"
                    ),
                );
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Family 7 — shard hygiene: the conservative-lookahead engine's
/// determinism rests on exactly two channels between shards — the SPSC
/// mailboxes (`ShardCtx::send`) and the atomics `shard.rs` owns. Two
/// bans keep it that way:
///
/// * **direct-schedule** — a file that implements against the shard API
///   (mentions `ShardModel`/`ShardCtx`) must not call
///   `schedule_at`/`schedule_in`/`schedule_now`: scheduling into a
///   `Sim` directly bypasses the mailbox stamping that gives
///   cross-shard events their `(time, src, seq)` total order;
/// * **shared-static** / **static-mut** — no shared-mutable statics in
///   simulator crates outside `shard.rs` (the mailbox/pool layer) and
///   `par.rs` (the copy pool): ambient shared state is invisible to the
///   lookahead protocol and breaks N-shard ≡ 1-shard bit-identity.
fn scan_shard(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    const SCHEDULE_METHODS: [&str; 3] = ["schedule_at", "schedule_in", "schedule_now"];
    const SHARED_MUTABLE: [&str; 16] = [
        "Mutex",
        "RwLock",
        "UnsafeCell",
        "OnceLock",
        "OnceCell",
        "LazyLock",
        "AtomicBool",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
        "AtomicPtr",
    ];
    let shard_aware = toks
        .iter()
        .any(|t| t.ident() == Some("ShardModel") || t.ident() == Some("ShardCtx"));
    let statics_exempt = rel == "crates/simcore/src/par.rs";
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if shard_aware
            && SCHEDULE_METHODS.contains(&id)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                "shard",
                rel,
                t.line,
                "direct-schedule",
                format!(
                    ".{id}() in shard-model code bypasses the mailbox; cross-shard events \
                     go through ShardCtx::send so they carry a (time, src, seq) stamp"
                ),
            );
        }
        if id != "static" || statics_exempt {
            continue;
        }
        // `'static` lexes as a Lifetime token, so an ident here is a
        // real `static` item (including the ones thread_local! expands).
        if toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            push(
                out,
                "shard",
                rel,
                t.line,
                "static-mut",
                "`static mut` is unsynchronized shared state; shards may only share \
                 through the mailbox API in simcore/src/shard.rs"
                    .to_string(),
            );
            continue;
        }
        // Scan the item's type (up to `=` or `;`) for interior-mutable
        // Sync wrappers. `!Sync` cells (RefCell et al.) can only appear
        // under thread_local!, which is per-thread and stays legal.
        let mut j = i + 1;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct('=') || a.is_punct(';') {
                break;
            }
            if let Some(ty) = a.ident() {
                if SHARED_MUTABLE.contains(&ty) {
                    push(
                        out,
                        "shard",
                        rel,
                        a.line,
                        "shared-static",
                        format!(
                            "shared-mutable static (`{ty}`) outside the shard/copy pool \
                             layer; ambient cross-shard state breaks N-shard ≡ 1-shard \
                             bit-identity"
                        ),
                    );
                }
            }
            j += 1;
        }
    }
}

/// Family 8 — offload hygiene: the two offload surfaces added for the
/// NIC/stream-triggered paths stay behind their construction APIs.
///
/// * **dev-exec** — DEV descriptor programs execute only in the
///   sanctioned interpreters ([`DEV_EXECUTORS`]): naming `DevCursor` or
///   its `next_units*` walks anywhere else forks the descriptor
///   semantics across modules and bypasses the executors' charge and
///   fault points. Other code uses the wrapped walks
///   (`devengine::whole_units` / `flip_units`) or an engine.
/// * **graph-construct** — stream-op graphs exist only through the
///   capture API in [`GRAPH_CAPTURE`]: naming `StreamOp` elsewhere
///   means hand-assembling a graph, which would skip the capture-time
///   validation and charging that makes replays zero-CPU by
///   construction.
fn scan_offload(rel: &str, toks: &[Token], out: &mut Vec<Violation>) {
    const DEV_IDENTS: [&str; 3] = ["DevCursor", "next_units", "next_units_into"];
    let dev_exempt = DEV_EXECUTORS
        .iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)));
    let graph_exempt = rel == GRAPH_CAPTURE;
    for t in toks {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if !dev_exempt && DEV_IDENTS.contains(&id) {
            push(
                out,
                "offload",
                rel,
                t.line,
                "dev-exec",
                format!(
                    "`{id}` walks DEV descriptor programs outside the sanctioned executors; \
                     use devengine::whole_units/flip_units or go through an engine"
                ),
            );
        }
        if !graph_exempt && id == "StreamOp" {
            push(
                out,
                "offload",
                rel,
                t.line,
                "graph-construct",
                "stream-op graphs are built only through gpusim's GraphCapture API; \
                 hand-assembled op lists bypass capture-time charging"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn kinds(rel: &str, src: &str) -> Vec<&'static str> {
        let toks = lex(src);
        let mut out = Vec::new();
        scan_file(rel, &toks, &mut out);
        out.into_iter().map(|v| v.kind).collect()
    }

    #[test]
    fn scopes_route_files_to_families() {
        assert!(any_scope("crates/simcore/src/event.rs"));
        assert!(any_scope("crates/mpirt/src/protocol/sm.rs"));
        assert!(any_scope("crates/datatype/src/lib.rs")); // wallclock only
                                                          // Bench bins and the linter itself are exempt from the
                                                          // determinism/panic families but still in arch scope: a figure
                                                          // harness hardcoding `k40()` would silently ignore `--arch`.
        assert!(any_scope("crates/bench/src/bin/fig6.rs"));
        assert!(any_scope("crates/xtask/src/lib.rs"));
        assert!(arch_scope("crates/bench/src/bin/fig6.rs"));
        assert!(!arch_scope("crates/gpusim/src/spec.rs"));
        assert!(!any_scope("crates/simcore/tests/determinism.rs"));
    }

    #[test]
    fn determinism_catches_hash_and_clock() {
        let ks = kinds(
            "crates/simcore/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
        );
        assert!(ks.contains(&"hashmap"));
        assert!(ks.contains(&"wallclock"));
        // The TraceEvent::Instant enum variant must not fire.
        let ks = kinds(
            "crates/simcore/src/x.rs",
            "let e = TraceEvent::Instant { t };",
        );
        assert!(ks.is_empty());
    }

    #[test]
    fn panic_rule_catches_all_kinds_outside_tests() {
        let src =
            "fn f(v: &[u8]) { v.x.unwrap(); y.expect(\"m\"); panic!(\"b\"); let a = v[0]; }\n\
                   #[cfg(test)] mod t { fn g() { z.unwrap(); } }";
        let ks = kinds("crates/mpirt/src/protocol/x.rs", src);
        assert_eq!(
            ks,
            vec!["unwrap", "expect", "panic", "index"],
            "and the test-region unwrap is exempt"
        );
    }

    #[test]
    fn index_rule_ignores_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\nfn f(x: [u8; 4], y: &[u8]) -> [u8; 2] { vec![1, 2]; g() }";
        let ks = kinds("crates/netsim/src/x.rs", src);
        assert!(ks.is_empty(), "{ks:?}");
    }

    #[test]
    fn fault_rule_spares_wrapper_modules() {
        let src = "fn f(r: &mut Fifo) { r.reserve(now, cost); }";
        assert_eq!(kinds("crates/mpirt/src/world.rs", src), vec!["reserve"]);
        assert!(kinds("crates/netsim/src/wire.rs", src).is_empty());
        assert!(kinds("crates/mpirt/src/io.rs", src).is_empty());
    }

    #[test]
    fn arch_rule_catches_hardcoded_constructors() {
        let bad = "fn f() { let s = GpuSpec::k40(); let t = NodeTopology::psg_node(4); }";
        assert_eq!(
            kinds("crates/devengine/src/x.rs", bad),
            vec!["k40", "psg_node"]
        );
        // The fn-pointer form (no call parens) is how the registry
        // itself references the constructors — it must stay legal, as
        // must the slug string and test regions.
        let ptr =
            "const A: GpuArch = GpuArch { spec: GpuSpec::k40, topo: NodeTopology::psg_node };";
        assert!(kinds("crates/gpusim/src/arch.rs", ptr).is_empty());
        let slug = "fn f() { let a = GpuArch::named(\"k40\"); }";
        assert!(kinds("crates/bench/src/runner.rs", slug).is_empty());
        let test_region = "#[cfg(test)] mod t { fn g() { let s = GpuSpec::k40(); } }";
        assert!(kinds("crates/gpusim/src/system.rs", test_region).is_empty());
        // spec.rs defines the constructors; the rule never runs there.
        let def = "impl GpuSpec { pub fn k40() -> GpuSpec { k40_helper() } }";
        assert!(kinds("crates/gpusim/src/spec.rs", def).is_empty());
    }

    #[test]
    fn sched_rule_bans_shadow_queues_and_boxed_events() {
        let heap = "use std::collections::BinaryHeap;\nfn f() { let q: BinaryHeap<u32> = BinaryHeap::new(); }";
        assert_eq!(
            kinds("crates/netsim/src/x.rs", heap),
            vec!["binary-heap", "binary-heap", "binary-heap"]
        );
        // The scheduler itself is exempt — it owns the calendar queue.
        assert!(kinds("crates/simcore/src/event.rs", heap).is_empty());
        // Test regions are exempt (the differential test models the
        // scheduler with a reference heap).
        let test_region = "#[cfg(test)] mod t { use std::collections::BinaryHeap; }";
        assert!(kinds("crates/memsim/src/x.rs", test_region).is_empty());

        let boxed = "fn f(sim: &mut Sim<W>) { sim.schedule_in(d, Box::new(move |s| go(s))); }";
        assert_eq!(kinds("crates/mpirt/src/x.rs", boxed), vec!["boxed-event"]);
        // Plain closures and Box::new outside a schedule call are fine.
        let plain =
            "fn f(sim: &mut Sim<W>) { sim.schedule_now(move |s| go(s)); let b = Box::new(1); }";
        assert!(kinds("crates/mpirt/src/x.rs", plain).is_empty());
    }

    #[test]
    fn shard_rule_bans_direct_schedules_in_model_code() {
        // A ShardModel impl reaching for Sim scheduling bypasses the
        // mailbox stamping.
        let bad = "impl ShardModel for M { fn deliver(&mut self, sim: &mut Sim<W>) { \
                   sim.schedule_in(d, f); } }";
        assert_eq!(kinds("crates/mpirt/src/x.rs", bad), vec!["direct-schedule"]);
        // The same call in a file that never touches the shard API is
        // ordinary simulation code (sched family territory, not ours).
        let plain = "fn f(sim: &mut Sim<W>) { sim.schedule_in(d, g); }";
        assert!(kinds("crates/mpirt/src/x.rs", plain).is_empty());
        // The engine itself is exempt — it owns the Sim bridge.
        assert!(kinds("crates/simcore/src/shard.rs", bad).is_empty());
    }

    #[test]
    fn shard_rule_bans_shared_mutable_statics() {
        let ks = kinds(
            "crates/netsim/src/x.rs",
            "static mut COUNT: u64 = 0;\nstatic Q: Mutex<Vec<u8>> = Mutex::new(Vec::new());",
        );
        assert_eq!(ks, vec!["static-mut", "shared-static"]);
        // Immutable statics, `&'static` lifetimes, and thread-local
        // RefCells stay legal.
        let ok = "static TABLE: [u32; 4] = [1, 2, 3, 4];\n\
                  fn f(s: &'static str) {}\n\
                  thread_local! { static SHELF: RefCell<Shelf> = RefCell::new(Shelf::new()); }";
        assert!(kinds("crates/simcore/src/x.rs", ok).is_empty());
        // The two pool modules are the sanctioned homes.
        let pool = "static POOL: OnceLock<CopyPool> = OnceLock::new();";
        assert!(kinds("crates/simcore/src/par.rs", pool).is_empty());
        assert!(kinds("crates/simcore/src/shard.rs", pool).is_empty());
        assert_eq!(kinds("crates/gpusim/src/x.rs", pool), vec!["shared-static"]);
    }

    #[test]
    fn offload_rule_bans_rogue_dev_executors() {
        let bad = "fn f(ty: &DataType) { let mut c = DevCursor::new(ty, 1, 256)?; \
                   c.next_units_into(64, &mut v); }";
        assert_eq!(
            kinds("crates/mpirt/src/protocol/x.rs", bad),
            vec!["dev-exec", "dev-exec"]
        );
        // The sanctioned interpreters keep their walks.
        assert!(kinds("crates/devengine/src/dev.rs", bad).is_empty());
        assert!(kinds("crates/mpirt/src/cpupack.rs", bad).is_empty());
        let nic = "fn f() { c.next_units_into(64, &mut v); }";
        assert!(kinds("crates/netsim/src/nic.rs", nic).is_empty());
        // The wrapped walks stay legal everywhere.
        let ok = "fn f(ty: &DataType) { let (u, s) = whole_units(ty, 1, 256, true)?; \
                  let flipped = flip_units(&u); }";
        assert!(kinds("crates/mpirt/src/protocol/x.rs", ok).is_empty());
        // Test regions are exempt (differential tests walk cursors).
        let test_region = "#[cfg(test)] mod t { fn g() { let c = DevCursor::new(t, 1, 9); } }";
        assert!(kinds("crates/netsim/src/x.rs", test_region).is_empty());
    }

    #[test]
    fn offload_rule_bans_hand_assembled_stream_graphs() {
        let bad = "fn f(v: &mut Vec<StreamOp>) { v.push(StreamOp::Trigger); }";
        assert_eq!(
            kinds("crates/mpirt/src/x.rs", bad),
            vec!["graph-construct", "graph-construct"]
        );
        // The capture API itself owns the node type.
        assert!(kinds("crates/gpusim/src/stream_trigger.rs", bad).is_empty());
        // Going through GraphCapture is the sanctioned construction.
        let ok =
            "fn f(sim: &mut Sim<W>) { let g = GraphCapture::begin(st).trigger().finish(sim); }";
        assert!(kinds("crates/mpirt/src/x.rs", ok).is_empty());
    }

    #[test]
    fn metrics_rule_wants_registry_constants() {
        let bad = "fn f(sim: &mut S) { sim.trace.count(\"mpi.rogue\", a, b, n); }";
        assert_eq!(kinds("crates/gpusim/src/x.rs", bad), vec!["literal-name"]);
        let good = "fn f(sim: &mut S) { sim.trace.count(names::MPI_DELIVERED_BYTES, a, b, n); }";
        assert!(kinds("crates/gpusim/src/x.rs", good).is_empty());
        // An iterator .count() has no arguments and stays silent.
        let iter = "fn f(v: &[u8]) -> usize { v.iter().count() }";
        assert!(kinds("crates/simcore/src/x.rs", iter).is_empty());
    }
}
