//! `cargo xtask lint [--root <dir>] [--report <file>]`
//!
//! Exit code 0 when every rule family is clean (all remaining findings
//! exactly covered by the `lint/*.allow` ratchets); 1 on any violation
//! or stale allowlist entry; 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--root <dir>] [--report <file>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("lint") {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--report" => match args.next() {
                Some(v) => report = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(xtask::workspace_root);
    let outcome = match xtask::run_lint(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render_text());
    println!(
        "scanned {} file(s) under {}",
        outcome.files_scanned,
        root.display()
    );
    if let Some(path) = &report {
        let json = xtask::report::render_json(&outcome.reports);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
