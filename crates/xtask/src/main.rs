//! `cargo xtask <lint|audit|ratchet>` — workspace invariant tooling.
//!
//! * `lint  [--root <dir>] [--report <file>]` — the eight per-file
//!   token-level rule families.
//! * `audit [--root <dir>] [--report <file>] [--json]` — the four
//!   cross-file semantic analyses over the call graph. `--json` prints
//!   the machine-readable report to stdout.
//! * `ratchet --old <dir> --new <dir>` — assert every `*.allow` file in
//!   `<new>` only shrinks relative to `<old>` (CI materializes the base
//!   revision's `lint/` into `<old>` via `git show`).
//!
//! Exit code 0 when clean; 1 on any violation, stale allowlist entry,
//! or ratchet loosening; 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--root <dir>] [--report <file>]\n\
        \x20      cargo xtask audit [--root <dir>] [--report <file>] [--json]\n\
        \x20      cargo xtask ratchet --old <dir> --new <dir>"
    );
    ExitCode::from(2)
}

struct CommonArgs {
    root: PathBuf,
    report: Option<PathBuf>,
    json: bool,
}

fn parse_common(args: impl Iterator<Item = String>, allow_json: bool) -> Option<CommonArgs> {
    let mut args = args.peekable();
    let mut root: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut json = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = Some(PathBuf::from(args.next()?)),
            "--report" => report = Some(PathBuf::from(args.next()?)),
            "--json" if allow_json => json = true,
            _ => return None,
        }
    }
    Some(CommonArgs {
        root: root.unwrap_or_else(xtask::workspace_root),
        report,
        json,
    })
}

fn write_report(path: &PathBuf, json: &str, cmd: &str) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("xtask {cmd}: writing {}: {e}", path.display());
        return Err(ExitCode::from(2));
    }
    println!("report written to {}", path.display());
    Ok(())
}

fn cmd_lint(args: impl Iterator<Item = String>) -> ExitCode {
    let Some(a) = parse_common(args, false) else {
        return usage();
    };
    let outcome = match xtask::run_lint(&a.root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render_text());
    println!(
        "scanned {} file(s) under {}",
        outcome.files_scanned,
        a.root.display()
    );
    if let Some(path) = &a.report {
        let json = xtask::report::render_json(&outcome.reports);
        if let Err(code) = write_report(path, &json, "lint") {
            return code;
        }
    }
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_audit(args: impl Iterator<Item = String>) -> ExitCode {
    let Some(a) = parse_common(args, true) else {
        return usage();
    };
    let outcome = match xtask::run_audit(&a.root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask audit: {e}");
            return ExitCode::from(2);
        }
    };
    let json = xtask::report::render_json(&outcome.reports);
    if a.json {
        print!("{json}");
    } else {
        print!("{}", outcome.render_text());
        println!(
            "audited {} file(s), {} fn(s) in the call graph, under {}",
            outcome.files_scanned,
            outcome.fns_indexed,
            a.root.display()
        );
    }
    if let Some(path) = &a.report {
        if let Err(code) = write_report(path, &json, "audit") {
            return code;
        }
    }
    if outcome.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_ratchet(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut old: Option<PathBuf> = None;
    let mut new: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--old" => old = args.next().map(PathBuf::from),
            "--new" => new = args.next().map(PathBuf::from),
            _ => return usage(),
        }
    }
    let (Some(old), Some(new)) = (old, new) else {
        return usage();
    };
    // Families this binary defines may introduce a fresh allow file
    // when the base had none (the family itself is new); any file
    // already present in `old` must only shrink. An unknown family
    // appearing out of nowhere always fails.
    let mut known: Vec<&str> = xtask::rules::FAMILIES.to_vec();
    known.extend(xtask::audit::AUDIT_FAMILIES);
    match xtask::allow::ratchet_check(&old, &new, &known) {
        Ok(errors) if errors.is_empty() => {
            println!("ratchet OK: every allowlist only shrank");
            ExitCode::SUCCESS
        }
        Ok(errors) => {
            for e in &errors {
                eprintln!("ratchet: {e}");
            }
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask ratchet: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => cmd_lint(args),
        Some("audit") => cmd_audit(args),
        Some("ratchet") => cmd_ratchet(args),
        _ => usage(),
    }
}
