//! Ratchet allowlists.
//!
//! Each rule family reads `lint/<family>.allow`, a line-oriented file of
//! `<path> <kind> <count>` entries. An entry suppresses exactly `count`
//! findings of `kind` in `path`:
//!
//! * more findings than allowed  → the group is reported as violations;
//! * fewer findings than allowed → the entry is **stale** and the lint
//!   fails too, so the ratchet can only ever tighten;
//! * exactly as many             → suppressed, counted in the report.

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Parsed allowlist: (path, kind) → allowed count.
#[derive(Debug, Default)]
pub struct AllowList {
    entries: BTreeMap<(String, String), u64>,
}

impl AllowList {
    /// Load `path`, treating a missing file as an empty allowlist.
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => parse(&text).map_err(io::Error::other),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Every `(path, kind) → count` entry, in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.entries
            .iter()
            .map(|((p, k), &c)| (p.as_str(), k.as_str(), c))
    }
}

/// Ratchet-direction check: compare every `*.allow` file under
/// `new_dir` against `old_dir` and report each entry that appeared or
/// grew. Removed entries and shrunken counts are the ratchet working as
/// intended; a brand-new `*.allow` file is only acceptable when the
/// family itself is new, which the caller signals via `new_families`.
pub fn ratchet_check(
    old_dir: &Path,
    new_dir: &Path,
    new_families: &[&str],
) -> io::Result<Vec<String>> {
    let mut errors = Vec::new();
    let mut names: Vec<String> = Vec::new();
    if new_dir.is_dir() {
        for entry in std::fs::read_dir(new_dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.ends_with(".allow") {
                names.push(name);
            }
        }
    }
    names.sort();
    for name in names {
        let family = name.trim_end_matches(".allow");
        let new = AllowList::load(&new_dir.join(&name))?;
        let old_path = old_dir.join(&name);
        if !old_path.exists() {
            if !new_families.contains(&family) {
                // A family that existed before must not (re)appear with
                // a fresh allowance out of nowhere.
                for (p, k, c) in new.entries() {
                    errors.push(format!(
                        "lint/{name}: new allowlist file introduces {p} {k} {c}"
                    ));
                }
            }
            continue;
        }
        let old = AllowList::load(&old_path)?;
        let old_map: BTreeMap<(String, String), u64> = old
            .entries()
            .map(|(p, k, c)| ((p.to_string(), k.to_string()), c))
            .collect();
        for (p, k, c) in new.entries() {
            match old_map.get(&(p.to_string(), k.to_string())) {
                None => errors.push(format!(
                    "lint/{name}: new entry `{p} {k} {c}` — the ratchet only tightens"
                )),
                Some(&oc) if c > oc => errors.push(format!(
                    "lint/{name}: `{p} {k}` grew {oc} -> {c} — the ratchet only tightens"
                )),
                Some(_) => {}
            }
        }
    }
    Ok(errors)
}

/// Parse allowlist text. `#` starts a comment; blank lines are ignored.
pub fn parse(text: &str) -> Result<AllowList, String> {
    let mut entries = BTreeMap::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut f = line.split_whitespace();
        let (Some(path), Some(kind), Some(count), None) = (f.next(), f.next(), f.next(), f.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `<path> <kind> <count>`, got {raw:?}",
                n + 1
            ));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count:?}", n + 1))?;
        if entries
            .insert((path.to_string(), kind.to_string()), count)
            .is_some()
        {
            return Err(format!(
                "allowlist line {}: duplicate entry for {path} {kind}",
                n + 1
            ));
        }
    }
    Ok(AllowList { entries })
}

/// An allowlist entry that allows more findings than exist.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    pub file: String,
    pub kind: String,
    pub allowed: u64,
    pub found: u64,
}

/// One family's reconciled result.
#[derive(Debug)]
pub struct RuleReport {
    pub family: &'static str,
    /// Findings beyond the allowance, in (file, kind, line) order.
    pub violations: Vec<Violation>,
    pub stale: Vec<StaleEntry>,
    /// Findings covered by exact allowlist entries.
    pub suppressed: u64,
}

impl RuleReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }

    /// Human-readable summary lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.ok() {
            let _ = writeln!(
                out,
                "{:<12} OK ({} finding(s) ratcheted by lint/{}.allow)",
                self.family, self.suppressed, self.family
            );
            return out;
        }
        let _ = writeln!(
            out,
            "{:<12} FAIL: {} violation(s), {} stale allowlist entr(y/ies)",
            self.family,
            self.violations.len(),
            self.stale.len()
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {}:{} [{}] {}", v.file, v.line, v.kind, v.msg);
        }
        for s in &self.stale {
            let _ = writeln!(
                out,
                "  stale: {} {} allows {}, found {} — tighten lint/{}.allow",
                s.file, s.kind, s.allowed, s.found, self.family
            );
        }
        out
    }
}

/// Reconcile one family's raw findings against its allowlist.
pub fn apply(family: &'static str, found: Vec<Violation>, allow: &AllowList) -> RuleReport {
    let mut groups: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in found {
        groups
            .entry((v.file.clone(), v.kind.to_string()))
            .or_default()
            .push(v);
    }
    let mut report = RuleReport {
        family,
        violations: Vec::new(),
        stale: Vec::new(),
        suppressed: 0,
    };
    for (key, group) in &groups {
        let allowed = allow.entries.get(key).copied().unwrap_or(0);
        let n = group.len() as u64;
        if n > allowed {
            report.violations.extend(group.iter().cloned());
        } else {
            report.suppressed += n;
        }
    }
    for ((file, kind), &allowed) in &allow.entries {
        let found = groups
            .get(&(file.clone(), kind.clone()))
            .map_or(0, |g| g.len() as u64);
        if found < allowed {
            report.stale.push(StaleEntry {
                file: file.clone(),
                kind: kind.clone(),
                allowed,
                found,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, kind: &'static str) -> Violation {
        Violation {
            family: "panic",
            file: file.to_string(),
            line: 1,
            kind,
            msg: String::new(),
        }
    }

    #[test]
    fn exact_allowance_suppresses() {
        let allow = parse("a.rs unwrap 2\n").unwrap();
        let r = apply(
            "panic",
            vec![v("a.rs", "unwrap"), v("a.rs", "unwrap")],
            &allow,
        );
        assert!(r.ok());
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn excess_findings_violate() {
        let allow = parse("a.rs unwrap 1\n").unwrap();
        let r = apply(
            "panic",
            vec![v("a.rs", "unwrap"), v("a.rs", "unwrap")],
            &allow,
        );
        assert_eq!(r.violations.len(), 2);
        assert!(!r.ok());
    }

    #[test]
    fn stale_entries_fail_the_ratchet() {
        let allow = parse("# comment\na.rs unwrap 3\ngone.rs index 1\n").unwrap();
        let r = apply("panic", vec![v("a.rs", "unwrap")], &allow);
        assert_eq!(r.stale.len(), 2);
        assert!(!r.ok());
        assert_eq!(r.suppressed, 1, "under-allowance still suppresses");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("a.rs unwrap\n").is_err());
        assert!(parse("a.rs unwrap twelve\n").is_err());
        assert!(parse("a.rs unwrap 1 extra\n").is_err());
        assert!(parse("a.rs unwrap 1\na.rs unwrap 2\n").is_err());
    }
}
