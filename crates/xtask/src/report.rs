//! Machine-readable lint report (hand-rolled JSON — the workspace has
//! no serialization dependency by policy).

use crate::allow::RuleReport;
use std::fmt::Write as _;

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the full lint outcome as a JSON document:
///
/// ```json
/// {
///   "ok": false,
///   "rules": {
///     "panic": {
///       "ok": false,
///       "suppressed": 4,
///       "violations": [{"file": "...", "line": 7, "kind": "unwrap", "msg": "..."}],
///       "stale": [{"file": "...", "kind": "index", "allowed": 3, "found": 1}]
///     }
///   }
/// }
/// ```
pub fn render_json(reports: &[RuleReport]) -> String {
    let ok = reports.iter().all(|r| r.ok());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"ok\": {ok},");
    out.push_str("  \"rules\": {\n");
    for (ri, r) in reports.iter().enumerate() {
        let _ = write!(out, "    ");
        esc(r.family, &mut out);
        out.push_str(": {\n");
        let _ = writeln!(out, "      \"ok\": {},", r.ok());
        let _ = writeln!(out, "      \"suppressed\": {},", r.suppressed);
        out.push_str("      \"violations\": [");
        for (i, v) in r.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("        {\"file\": ");
            esc(&v.file, &mut out);
            let _ = write!(out, ", \"line\": {}, \"kind\": ", v.line);
            esc(v.kind, &mut out);
            out.push_str(", \"msg\": ");
            esc(&v.msg, &mut out);
            out.push('}');
        }
        if !r.violations.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n");
        out.push_str("      \"stale\": [");
        for (i, s) in r.stale.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("        {\"file\": ");
            esc(&s.file, &mut out);
            out.push_str(", \"kind\": ");
            esc(&s.kind, &mut out);
            let _ = write!(
                out,
                ", \"allowed\": {}, \"found\": {}}}",
                s.allowed, s.found
            );
        }
        if !r.stale.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n");
        out.push_str(if ri + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

/// A minimal JSON reader for the reports this module writes. It exists
/// so the audit's `--json` output can be round-trip-verified by the
/// self-tests (and by CI) without a serialization dependency. It
/// handles the full JSON grammar the renderer can emit; it is not a
/// general-purpose validator (no surrogate-pair or number-format
/// pedantry).
pub mod json {
    use std::collections::BTreeMap;

    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => obj(b, i),
            Some(b'[') => arr(b, i),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => num(b, i),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {i}"))
        }
    }

    fn num(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        *i += 1; // opening quote
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {i}")),
                    }
                    *i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s = std::str::from_utf8(&b[*i..])
                        .map_err(|_| format!("bad utf-8 at byte {i}"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *i += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn obj(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // {
        let mut m = BTreeMap::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            skip_ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected object key at byte {i}"));
            }
            let k = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at byte {i}"));
            }
            *i += 1;
            m.insert(k, value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {i}")),
            }
        }
    }

    fn arr(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // [
        let mut v = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            v.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {i}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::{RuleReport, StaleEntry};
    use crate::rules::Violation;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let reports = vec![
            RuleReport {
                family: "panic",
                violations: vec![Violation {
                    family: "panic",
                    file: "a\\b.rs".to_string(),
                    line: 3,
                    kind: "expect",
                    msg: "say \"no\"".to_string(),
                }],
                stale: vec![StaleEntry {
                    file: "c.rs".to_string(),
                    kind: "index".to_string(),
                    allowed: 2,
                    found: 1,
                }],
                suppressed: 5,
            },
            RuleReport {
                family: "metrics",
                violations: vec![],
                stale: vec![],
                suppressed: 0,
            },
        ];
        let j = render_json(&reports);
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"allowed\": 2, \"found\": 1"));
        assert!(j.contains("\"metrics\": {\n      \"ok\": true"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = j.chars().filter(|&c| c == open).count();
            let c = j.chars().filter(|&c| c == close).count();
            assert_eq!(o, c);
        }
        // Full round-trip through the reader.
        let v = json::parse(&j).expect("rendered JSON parses");
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false));
        let panic = v.get("rules").and_then(|r| r.get("panic")).unwrap();
        assert_eq!(panic.get("suppressed").and_then(|s| s.as_num()), Some(5.0));
        let viol = panic.get("violations").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(
            viol[0].get("file").and_then(|f| f.as_str()),
            Some("a\\b.rs")
        );
        assert_eq!(
            viol[0].get("msg").and_then(|m| m.as_str()),
            Some("say \"no\"")
        );
    }

    #[test]
    fn json_reader_rejects_malformed_documents() {
        assert!(json::parse("{\"a\": 1").is_err());
        assert!(json::parse("[1, 2,]").is_err());
        assert!(json::parse("{\"a\": 1} extra").is_err());
        assert!(json::parse("{'a': 1}").is_err());
    }
}
