//! Machine-readable lint report (hand-rolled JSON — the workspace has
//! no serialization dependency by policy).

use crate::allow::RuleReport;
use std::fmt::Write as _;

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render the full lint outcome as a JSON document:
///
/// ```json
/// {
///   "ok": false,
///   "rules": {
///     "panic": {
///       "ok": false,
///       "suppressed": 4,
///       "violations": [{"file": "...", "line": 7, "kind": "unwrap", "msg": "..."}],
///       "stale": [{"file": "...", "kind": "index", "allowed": 3, "found": 1}]
///     }
///   }
/// }
/// ```
pub fn render_json(reports: &[RuleReport]) -> String {
    let ok = reports.iter().all(|r| r.ok());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"ok\": {ok},");
    out.push_str("  \"rules\": {\n");
    for (ri, r) in reports.iter().enumerate() {
        let _ = write!(out, "    ");
        esc(r.family, &mut out);
        out.push_str(": {\n");
        let _ = writeln!(out, "      \"ok\": {},", r.ok());
        let _ = writeln!(out, "      \"suppressed\": {},", r.suppressed);
        out.push_str("      \"violations\": [");
        for (i, v) in r.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("        {\"file\": ");
            esc(&v.file, &mut out);
            let _ = write!(out, ", \"line\": {}, \"kind\": ", v.line);
            esc(v.kind, &mut out);
            out.push_str(", \"msg\": ");
            esc(&v.msg, &mut out);
            out.push('}');
        }
        if !r.violations.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n");
        out.push_str("      \"stale\": [");
        for (i, s) in r.stale.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("        {\"file\": ");
            esc(&s.file, &mut out);
            out.push_str(", \"kind\": ");
            esc(&s.kind, &mut out);
            let _ = write!(
                out,
                ", \"allowed\": {}, \"found\": {}}}",
                s.allowed, s.found
            );
        }
        if !r.stale.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n");
        out.push_str(if ri + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::{RuleReport, StaleEntry};
    use crate::rules::Violation;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let reports = vec![
            RuleReport {
                family: "panic",
                violations: vec![Violation {
                    family: "panic",
                    file: "a\\b.rs".to_string(),
                    line: 3,
                    kind: "expect",
                    msg: "say \"no\"".to_string(),
                }],
                stale: vec![StaleEntry {
                    file: "c.rs".to_string(),
                    kind: "index".to_string(),
                    allowed: 2,
                    found: 1,
                }],
                suppressed: 5,
            },
            RuleReport {
                family: "metrics",
                violations: vec![],
                stale: vec![],
                suppressed: 0,
            },
        ];
        let j = render_json(&reports);
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"allowed\": 2, \"found\": 1"));
        assert!(j.contains("\"metrics\": {\n      \"ok\": true"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = j.chars().filter(|&c| c == open).count();
            let c = j.chars().filter(|&c| c == close).count();
            assert_eq!(o, c);
        }
    }
}
