//! `cargo xtask audit` — the semantic analysis layer.
//!
//! Where the lint families ([`crate::rules`]) judge one file at a time,
//! the audit builds a workspace-wide item table and approximate call
//! graph ([`crate::graph`]) and runs four cross-file analyses:
//!
//! 1. **charge-model** — every cost constant in the `gpusim` spec and
//!    topology tables must be read by both a simulator charge site and
//!    a tuner cost term; a one-sided constant means the analytic model
//!    and the simulator have drifted apart and every never-worse gate
//!    built on their agreement is silently corrupt.
//! 2. **fault-reach** — every simulated-time charge (`.reserve(`)
//!    reachable from the `mpirt` protocol entry surface must have a
//!    `faultsim` consult somewhere on the call path, replacing the old
//!    per-file token heuristic with call-graph reachability.
//! 3. **counter-live** — every counter/span name registered in
//!    `simcore::trace::names` must have an emission site, every
//!    emission must use a registered name, and `Session::metrics()`
//!    must still reach `Metrics::from_trace` so counters surface.
//! 4. **unsafe** — every `unsafe` token in the simulator crates must
//!    carry a `SAFETY` comment (or `# Safety` doc) nearby and live in a
//!    sanctioned module.
//!
//! Each analysis reconciles against its own tightening-only
//! `lint/<family>.allow` ratchet, exactly like the lint families.
//! Per-constant and per-name findings key their allowlist entries as
//! `<file>::<name>` so a single entry can be justified individually.
//! Soundness caveats of the name-resolved call graph are documented in
//! DESIGN.md §16: reachability over-approximates, so these analyses
//! check that visible paths satisfy invariants — they cannot prove a
//! path does not exist.

use crate::graph::{CallGraph, FnNode};
use crate::lexer::{self, Token};
use crate::rules::{in_sim_crates, Violation, CHARGE_WRAPPERS};
use std::collections::BTreeSet;

/// Audit analysis identifiers; one ratchet allowlist exists per family
/// under `lint/<family>.allow`, same as the lint families.
pub const AUDIT_FAMILIES: [&str; 4] = ["charge-model", "fault-reach", "counter-live", "unsafe"];

/// One lexed file plus its raw source (the unsafe audit needs to see
/// comments, which the lexer strips).
pub struct FileData {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    pub src: String,
    pub toks: Vec<Token>,
}

/// The spec/topology cost tables.
const SPEC_FILE: &str = "crates/gpusim/src/spec.rs";
const SPEC_STRUCTS: [&str; 2] = ["GpuSpec", "NodeTopology"];

/// Spec fields that are descriptive identity or capacity, not cost
/// constants: nothing charges or models them per-byte.
const SPEC_DESCRIPTIVE: [&str; 3] = ["name", "interconnect", "memory_bytes"];

/// Where the analytic model lives: the tuner proper and the devengine
/// planner it feeds.
const TUNER_FILES: [&str; 2] = ["crates/mpirt/src/tuner.rs", "crates/devengine/src/tune.rs"];

/// Files the tuner-side reachability may expand into: the cost tables
/// and the arch registry. A spec field read inside a helper here that
/// the tuner calls (e.g. `effective_traffic_bw`, `warp_chunk`) counts
/// as modeled.
const TUNER_REACH: [&str; 5] = [
    "crates/mpirt/src/tuner.rs",
    "crates/devengine/src/tune.rs",
    "crates/gpusim/src/spec.rs",
    "crates/gpusim/src/arch.rs",
    "crates/gpusim/src/system.rs",
];

/// Charge-side roots beyond [`CHARGE_WRAPPERS`]: the sanctioned DEV
/// executors charge time through the wrappers but read their own cost
/// constants first (the NIC packet processor reads `nic_dma_bw`, …).
const CHARGE_EXTRA_ROOTS: [&str; 3] = [
    "crates/netsim/src/nic.rs",
    "crates/mpirt/src/io.rs",
    "crates/devengine/src/",
];

/// The fault-reachability entry surface: the protocol state machines
/// plus connection establishment and MPI-IO.
const PROTOCOL_ROOTS: [&str; 3] = [
    "crates/mpirt/src/protocol/",
    "crates/mpirt/src/connection.rs",
    "crates/mpirt/src/io.rs",
];

/// A function "consults faultsim" when its body mentions the injector
/// API. Charges at or below such a function are considered guarded.
const FAULT_IDENTS: [&str; 6] = [
    "fault_roll",
    "fault_scaled",
    "faultsim",
    "FaultSim",
    "FaultOp",
    "FaultDecision",
];

/// Modules sanctioned to contain `unsafe` in the simulator crates: the
/// two pool layers whose invariants the loom models and miri cover.
const SANCTIONED_UNSAFE: [&str; 2] = ["crates/simcore/src/shard.rs", "crates/simcore/src/par.rs"];

/// Trace methods that *emit* (count or open a span) vs merely read.
const EMIT_METHODS: [&str; 5] = ["count", "count_to", "instant", "span_begin", "span_at"];

/// Build the call graph for pre-lexed files.
pub fn build_graph(files: &[FileData]) -> CallGraph {
    CallGraph::build(files.iter().map(|f| (f.rel.as_str(), f.toks.as_slice())))
}

/// Run all four analyses over pre-lexed files and their call graph,
/// returning raw findings for allowlist reconciliation.
pub fn analyze(files: &[FileData], graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    charge_model(files, graph, &mut out);
    fault_reach(graph, &mut out);
    counter_live(files, graph, &mut out);
    unsafe_audit(files, &mut out);
    out
}

fn push(
    out: &mut Vec<Violation>,
    family: &'static str,
    file: String,
    line: u32,
    kind: &'static str,
    msg: String,
) {
    out.push(Violation {
        family,
        file,
        line,
        kind,
        msg,
    });
}

// ---------------------------------------------------------------------
// 1. charge-model coherence
// ---------------------------------------------------------------------

fn is_charge_root(rel: &str) -> bool {
    CHARGE_WRAPPERS.contains(&rel)
        || CHARGE_EXTRA_ROOTS
            .iter()
            .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// Union of field reads over the non-test functions reachable from
/// `roots`, where the walk only expands callees for which `expand`
/// holds. Reads in the root functions themselves always count.
fn reads_from(
    graph: &CallGraph,
    roots: impl Fn(&FnNode) -> bool,
    expand: impl Fn(&FnNode) -> bool,
) -> BTreeSet<String> {
    let root_ids: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.in_test && roots(n))
        .map(|(i, _)| i)
        .collect();
    // `reachable_unprotected` stops descending at "protected" nodes;
    // here the barrier is "not an expandable file", and the roots are
    // always expanded (they pass `roots`, which implies `expand` in
    // both uses below — wrapper and tuner files expand themselves).
    let reached = graph.reachable_unprotected(root_ids, |n| n.in_test || !expand(n));
    let mut reads = BTreeSet::new();
    for &i in reached.keys() {
        reads.extend(graph.nodes[i].field_reads.iter().cloned());
    }
    reads
}

fn charge_model(files: &[FileData], graph: &CallGraph, out: &mut Vec<Violation>) {
    let Some(spec) = files.iter().find(|f| f.rel == SPEC_FILE) else {
        return; // fixture tree without spec tables — nothing to check
    };
    let mut fields: Vec<(String, u32)> = Vec::new();
    for s in SPEC_STRUCTS {
        fields.extend(lexer::extract_struct_fields(&spec.toks, s));
    }
    if fields.is_empty() {
        return;
    }
    let charge_reads = reads_from(
        graph,
        |n| is_charge_root(&n.file),
        |n| in_sim_crates(&n.file) && !TUNER_FILES.contains(&n.file.as_str()),
    );
    let tuner_reads = reads_from(
        graph,
        |n| TUNER_FILES.contains(&n.file.as_str()),
        |n| TUNER_REACH.contains(&n.file.as_str()),
    );
    for (field, line) in fields {
        if SPEC_DESCRIPTIVE.contains(&field.as_str()) {
            continue;
        }
        let charged = charge_reads.contains(&field);
        let modeled = tuner_reads.contains(&field);
        let key = format!("{SPEC_FILE}::{field}");
        match (charged, modeled) {
            (true, true) => {}
            (true, false) => push(
                out,
                "charge-model",
                key,
                line,
                "tuner-blind",
                format!("`{field}` is charged by the simulator but absent from the tuner model"),
            ),
            (false, true) => push(
                out,
                "charge-model",
                key,
                line,
                "sim-blind",
                format!("`{field}` is in the tuner model but no simulator charge site reads it"),
            ),
            (false, false) => push(
                out,
                "charge-model",
                key,
                line,
                "dead-const",
                format!("`{field}` is read by neither a charge site nor the tuner"),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// 2. fault reachability
// ---------------------------------------------------------------------

fn consults_fault(n: &FnNode) -> bool {
    FAULT_IDENTS.iter().any(|id| n.mentions.contains(*id))
}

fn fault_reach(graph: &CallGraph, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.in_test
                && PROTOCOL_ROOTS
                    .iter()
                    .any(|p| n.file == *p || (p.ends_with('/') && n.file.starts_with(p)))
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    // Edge filter: (a) never follow a `reserve` edge — `.reserve(` is
    // the charge predicate itself, so the violation anchors at the
    // caller holding the call, and following the name would alias every
    // wrapper's inner `FifoResource::reserve` into reachability; (b)
    // only expand into simulator crates, so same-named helpers in the
    // tooling crates can't splice unrelated chains together.
    let parent = graph.reachable_unprotected_filtered(
        roots,
        |n| n.in_test || consults_fault(n),
        |name, callee| name != "reserve" && in_sim_crates(&callee.file),
    );
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for &i in parent.keys() {
        let n = &graph.nodes[i];
        if n.reserve_lines.is_empty() || !in_sim_crates(&n.file) {
            continue;
        }
        if flagged.insert(i) {
            push(
                out,
                "fault-reach",
                n.file.clone(),
                n.reserve_lines[0],
                "unguarded-charge",
                format!(
                    "`{}` charges simulated time with no faultsim consult on path {}",
                    n.name,
                    graph.chain(&parent, i)
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// 3. counter liveness
// ---------------------------------------------------------------------

const TRACE_FILE: &str = "crates/simcore/src/trace.rs";
const SESSION_FILE: &str = "crates/mpirt/src/session.rs";

fn counter_live(files: &[FileData], graph: &CallGraph, out: &mut Vec<Violation>) {
    let Some(trace) = files.iter().find(|f| f.rel == TRACE_FILE) else {
        return;
    };
    let registry = lexer::extract_mod_consts(&trace.toks, "names");
    if registry.is_empty() {
        return;
    }
    let registered: BTreeSet<&str> = registry.iter().map(|(n, _, _)| n.as_str()).collect();
    // Emission sites: registry uses inside count/span calls, in
    // non-test code outside the registry's own file. A name is also
    // credited when a function references it anywhere *and* makes at
    // least one emit call — the codebase's idiom selects the constant
    // through a match and passes the binding (`let ctr = match dir
    // { .. names::A .. }; trace.count(ctr, ..)`), which argument
    // scanning alone cannot see.
    let mut emitted: BTreeSet<&str> = BTreeSet::new();
    for n in &graph.nodes {
        if n.in_test || n.file == TRACE_FILE {
            continue;
        }
        for (method, name, line) in &n.trace_uses {
            if !registered.contains(name.as_str()) {
                push(
                    out,
                    "counter-live",
                    n.file.clone(),
                    *line,
                    "unregistered-name",
                    format!("`.{method}(names::{name}, ..)` uses a name missing from simcore::trace::names"),
                );
            }
            if EMIT_METHODS.contains(&method.as_str()) {
                if let Some(r) = registered.get(name.as_str()) {
                    emitted.insert(r);
                }
            }
        }
    }
    // Indirection credit, second form: a pure selector function
    // (`CopyDirection::counter()`, `OneSided::span_name()`) returns a
    // registry constant and its *caller* emits it. Credit a function's
    // references when it emits itself or when any emitting function
    // calls it by name.
    let emits = |n: &FnNode| {
        n.trace_uses
            .iter()
            .any(|(m, _, _)| EMIT_METHODS.contains(&m.as_str()))
            || EMIT_METHODS.iter().any(|m| n.calls.contains(*m))
    };
    let mut emitter_calls: BTreeSet<&str> = BTreeSet::new();
    for n in &graph.nodes {
        if !n.in_test && n.file != TRACE_FILE && emits(n) {
            emitter_calls.extend(n.calls.iter().map(String::as_str));
        }
    }
    for n in &graph.nodes {
        if n.in_test || n.file == TRACE_FILE {
            continue;
        }
        if emits(n) || emitter_calls.contains(n.name.as_str()) {
            for name in &n.names_refs {
                if let Some(r) = registered.get(name.as_str()) {
                    emitted.insert(r);
                }
            }
        }
    }
    for (name, _, line) in &registry {
        if !emitted.contains(name.as_str()) {
            push(
                out,
                "counter-live",
                format!("{TRACE_FILE}::{name}"),
                *line,
                "dead-name",
                format!("`names::{name}` is registered but never emitted outside tests"),
            );
        }
    }
    // Structural check that counters still surface: Session::metrics
    // must reach Metrics::from_trace through the call graph.
    let metrics_roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.in_test && n.file == SESSION_FILE && n.name == "metrics")
        .map(|(i, _)| i)
        .collect();
    if let Some(&root) = metrics_roots.first() {
        let reached = graph.reachable(metrics_roots.iter().copied());
        let surfaces = reached
            .iter()
            .any(|&i| graph.nodes[i].name == "from_trace" && graph.nodes[i].file == TRACE_FILE);
        if !surfaces {
            push(
                out,
                "counter-live",
                SESSION_FILE.to_string(),
                graph.nodes[root].line,
                "metrics-chain",
                "Session::metrics() no longer reaches Metrics::from_trace — counters don't surface"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4. unsafe audit
// ---------------------------------------------------------------------

fn unsafe_audit(files: &[FileData], out: &mut Vec<Violation>) {
    for f in files {
        if !in_sim_crates(&f.rel) {
            continue;
        }
        let lines: Vec<&str> = f.src.lines().collect();
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (i, t) in f.toks.iter().enumerate() {
            if t.in_test || !t.is_ident("unsafe") {
                continue;
            }
            // `unsafe fn(` is a function-pointer *type*, not a block or
            // item — nothing to document at the use site.
            if f.toks.get(i + 1).is_some_and(|n| n.is_ident("fn"))
                && f.toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            if !seen_lines.insert(t.line) {
                continue;
            }
            if !SANCTIONED_UNSAFE.contains(&f.rel.as_str()) {
                push(
                    out,
                    "unsafe",
                    f.rel.clone(),
                    t.line,
                    "unsanctioned-unsafe",
                    "`unsafe` outside the sanctioned pool modules (simcore shard.rs / par.rs)"
                        .to_string(),
                );
            }
            // A `// SAFETY:` comment (or `/// # Safety` doc section)
            // must appear within 8 lines above or 2 lines below the
            // `unsafe` keyword — the two lines below admit the
            // codebase's idiom of putting the comment on the first line
            // inside an `unsafe fn` body.
            let at = t.line as usize; // 1-based, so `lines[at-1]` is the unsafe line
            let start = at.saturating_sub(9);
            let end = (at + 2).min(lines.len());
            let documented = lines[start..end]
                .iter()
                .any(|l| l.contains("SAFETY") || l.contains("# Safety"));
            if !documented {
                push(
                    out,
                    "unsafe",
                    f.rel.clone(),
                    t.line,
                    "missing-safety",
                    "`unsafe` without a `// SAFETY:` comment or `# Safety` doc nearby".to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> FileData {
        FileData {
            rel: rel.to_string(),
            src: src.to_string(),
            toks: lex(src),
        }
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged_twice_in_unsanctioned_file() {
        let files = [file(
            "crates/simcore/src/rogue.rs",
            "pub fn f(p: *mut u8) { unsafe { *p = 0; } }\n",
        )];
        let found = analyze(&files, &build_graph(&files));
        let kinds: Vec<&str> = found.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"unsanctioned-unsafe"));
        assert!(kinds.contains(&"missing-safety"));
    }

    #[test]
    fn safety_comment_in_sanctioned_module_is_clean() {
        let files = [file(
            "crates/simcore/src/shard.rs",
            "pub fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p = 0; }\n}\n",
        )];
        assert!(analyze(&files, &build_graph(&files)).is_empty());
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_an_unsafe_site() {
        let files = [file(
            "crates/simcore/src/rogue.rs",
            "pub struct H { f: unsafe fn(*mut u8) }\n",
        )];
        assert!(analyze(&files, &build_graph(&files)).is_empty());
    }
}
