//! A minimal Rust token scanner for the lint rules.
//!
//! Deliberately not a parser: the rules only need identifier/punctuation
//! sequences with comments and literals out of the way, plus line
//! numbers for reporting and a flag marking test-only regions. The
//! scanner handles line and (nested) block comments, plain and raw
//! string literals (including byte-string prefixes), character literals
//! versus lifetimes, and tracks `#[cfg(test)]` / `#[test]` items by
//! brace matching so rules can exempt test code.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any string literal: `".."`, `r".."`, `r#".."#`, `b".."`, `br".."`.
    Str(String),
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`) — distinct so it is never confused with a char.
    Lifetime,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the context the rules need.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// True inside a `#[cfg(test)]` or `#[test]` item (attribute
    /// through the end of the annotated item).
    pub in_test: bool,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(i) => Some(i),
            _ => None,
        }
    }

    pub fn str_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn is_ident_char(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// Tokenize `src`, then mark test-only regions.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut toks: Vec<Token> = Vec::new();
    let push = |tok: Tok, line: u32, toks: &mut Vec<Token>| {
        toks.push(Token {
            tok,
            line,
            in_test: false,
        });
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start = line;
                let s = scan_plain_string(b, &mut i, &mut line);
                push(Tok::Str(s), start, &mut toks);
            }
            b'\'' => scan_quote(b, &mut i, line, &mut toks),
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw/byte string prefixes glue an "identifier" to a
                // string literal: r"..", r#".."#, b"..", br#".."#.
                let raw = matches!(ident, "r" | "br" | "rb");
                let byte = ident == "b";
                if raw && i < b.len() && (b[i] == b'"' || b[i] == b'#') {
                    let start_line = line;
                    if let Some(s) = scan_raw_string(b, &mut i, &mut line) {
                        push(Tok::Str(s), start_line, &mut toks);
                        continue;
                    }
                } else if byte && i < b.len() && b[i] == b'"' {
                    let start_line = line;
                    let s = scan_plain_string(b, &mut i, &mut line);
                    push(Tok::Str(s), start_line, &mut toks);
                    continue;
                } else if byte && i < b.len() && b[i] == b'\'' {
                    // Byte char literal b'x'.
                    scan_quote(b, &mut i, line, &mut toks);
                    continue;
                }
                push(Tok::Ident(ident.to_string()), line, &mut toks);
            }
            _ if c.is_ascii_digit() => {
                while i < b.len() && (is_ident_char(b[i]) || b[i] == b'.') {
                    // Stop before a range operator: `0..n`.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                push(Tok::Num, line, &mut toks);
            }
            _ => {
                push(Tok::Punct(c as char), line, &mut toks);
                i += 1;
            }
        }
    }
    mark_test_regions(&mut toks);
    toks
}

/// Scan a `"..."` literal with escapes. `i` points at the opening quote
/// on entry and one past the closing quote on exit.
fn scan_plain_string(b: &[u8], i: &mut usize, line: &mut u32) -> String {
    let mut out = String::new();
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                break;
            }
            b'\\' => {
                // Keep escapes opaque; the rules never interpret them.
                if b.get(*i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                *i += 2;
            }
            b'\n' => {
                out.push('\n');
                *line += 1;
                *i += 1;
            }
            c => {
                out.push(c as char);
                *i += 1;
            }
        }
    }
    out
}

/// Scan a raw string body starting at the `#`s or quote after the `r`
/// prefix. Returns `None` if this was not actually a raw string (e.g.
/// `r#foo`, a raw identifier).
fn scan_raw_string(b: &[u8], i: &mut usize, line: &mut u32) -> Option<String> {
    let mut hashes = 0usize;
    let mut j = *i;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None; // raw identifier like r#fn
    }
    j += 1;
    let body_start = j;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let after = &b[j + 1..];
            if after.len() >= hashes && after[..hashes].iter().all(|&h| h == b'#') {
                let body = String::from_utf8_lossy(&b[body_start..j]).into_owned();
                *i = j + 1 + hashes;
                return Some(body);
            }
        }
        j += 1;
    }
    *i = j;
    Some(String::from_utf8_lossy(&b[body_start..]).into_owned())
}

/// Disambiguate `'` between char literals and lifetimes.
fn scan_quote(b: &[u8], i: &mut usize, line: u32, toks: &mut Vec<Token>) {
    let push = |tok: Tok, toks: &mut Vec<Token>| {
        toks.push(Token {
            tok,
            line,
            in_test: false,
        });
    };
    let next = b.get(*i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = *i + 2;
            if j < b.len() {
                j += 1; // the escaped character itself
            }
            // Unicode escapes: '\u{..}'.
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            *i = j + 1;
            push(Tok::Char, toks);
        }
        Some(c) if is_ident_char(c) => {
            let mut j = *i + 1;
            while j < b.len() && is_ident_char(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                *i = j + 1;
                push(Tok::Char, toks); // 'x'
            } else {
                *i = j;
                push(Tok::Lifetime, toks); // 'a
            }
        }
        Some(_) if b.get(*i + 2) == Some(&b'\'') => {
            *i += 3;
            push(Tok::Char, toks); // e.g. '('
        }
        _ => {
            *i += 1;
            push(Tok::Punct('\''), toks);
        }
    }
}

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item
/// (the attribute, any stacked attributes, and the item body).
fn mark_test_regions(toks: &mut [Token]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                // Skip attributes stacked after the test attribute.
                let mut j = attr_end + 1;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (e, _) = scan_attr(toks, j + 1);
                    j = e + 1;
                }
                let end = scan_item(toks, j);
                for t in &mut toks[i..=end] {
                    t.in_test = true;
                }
                i = end + 1;
            } else {
                i = attr_end + 1;
            }
        } else {
            i += 1;
        }
    }
}

/// `open` indexes the `[` of an attribute. Returns the index of the
/// matching `]` and whether the attribute marks test-only code
/// (contains the ident `test` and no `not`, so `#[cfg(not(test))]`
/// stays in scope).
fn scan_attr(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        } else if t.is_ident("not") {
            saw_not = true;
        }
        j += 1;
    }
    (j.min(toks.len() - 1), saw_test && !saw_not)
}

/// Find the end of the item starting at `start`: either a `;` at
/// bracket depth zero (e.g. `#[cfg(test)] use foo;`) or the `}` closing
/// the item's brace block.
fn scan_item(toks: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 && t.is_punct('}') {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    toks.len() - 1
}

// ---------------------------------------------------------------------
// Item extraction (the audit layer's symbol table)
// ---------------------------------------------------------------------

/// One `fn` item found in a token stream: its name, where it starts,
/// and the half-open token range of its body. Nested functions are
/// reported too (their body ranges lie inside the outer one's).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// True when the item sits in a test-only region.
    pub in_test: bool,
    /// Token indices of the body, `{` exclusive .. `}` exclusive.
    /// Empty for bodyless declarations (trait methods, externs).
    pub body: std::ops::Range<usize>,
}

/// Extract every `fn` item (including nested ones). `fn(` pointer
/// types are skipped — they declare a type, not an item.
pub fn extract_fns(toks: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.ident() else {
            continue; // `fn(` pointer type or malformed
        };
        // Find the body `{` (or a `;` for bodyless declarations) at
        // bracket depth zero relative to the signature.
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body = 0..0;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(';') && depth == 0 {
                break; // declaration without a body
            } else if t.is_punct('{') && depth == 0 {
                let open = j;
                let mut braces = 0usize;
                while j < toks.len() {
                    let b = &toks[j];
                    if b.is_punct('{') || b.is_punct('(') || b.is_punct('[') {
                        braces += 1;
                    } else if b.is_punct('}') || b.is_punct(')') || b.is_punct(']') {
                        braces = braces.saturating_sub(1);
                        if braces == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                body = open + 1..j.min(toks.len());
                break;
            }
            j += 1;
        }
        out.push(FnSpan {
            name: name.to_string(),
            line: toks[i].line,
            in_test: toks[i].in_test,
            body,
        });
    }
    out
}

/// Field names (with lines) of `struct <name> { .. }`, or empty when
/// the struct is not in this stream. Only named-field structs are
/// supported — that is all the audit needs for the spec tables.
pub fn extract_struct_fields(toks: &[Token], name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        // Scan to the opening brace, then collect `ident :` pairs at
        // depth 1 (skipping generics/attribute innards via depth).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                return out; // tuple/unit struct
            }
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth = depth.saturating_sub(1);
                if depth == 0 && t.is_punct('}') {
                    return out;
                }
            } else if depth == 1 {
                if let Some(id) = t.ident() {
                    if id != "pub" && toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                        out.push((id.to_string(), t.line));
                    }
                }
            }
            j += 1;
        }
        return out;
    }
    out
}

/// `pub const NAME: &str = "value";` items inside `mod <module> { .. }`:
/// returns `(NAME, value, line)` triples. Used to read the
/// `simcore::trace::names` registry without compiling it.
pub fn extract_mod_consts(toks: &[Token], module: &str) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.is_ident(module))) {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return out;
                }
            } else if t.is_ident("const") {
                if let Some(name) = toks.get(j + 1).and_then(|t| t.ident()) {
                    // Scan to `=` then expect a string literal.
                    let mut k = j + 2;
                    while k < toks.len() && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                        k += 1;
                    }
                    if let Some(val) = toks.get(k + 1).and_then(|t| t.str_lit()) {
                        out.push((name.to_string(), val.to_string(), toks[j].line));
                    }
                }
            }
            j += 1;
        }
        return out;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, bool)> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some((i, t.in_test)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let toks = lex("// HashMap\n/* HashSet /* nested */ */ let x = \"HashMap\";");
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!toks.iter().any(|t| t.is_ident("HashSet")));
        assert!(toks.iter().any(|t| t.str_lit() == Some("HashMap")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let s = r#\"panic!(\"#; g(s) }");
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        let toks = lex("let c = '\\n'; let d = 'x'; let e = '{';");
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Char).count(), 3);
        assert!(!toks.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n\
                   fn live2() { c.unwrap(); }";
        let ids = idents(src);
        let unwraps: Vec<bool> = ids
            .iter()
            .filter(|(i, _)| i == "unwrap")
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { x.unwrap() }\n\
                   fn live() { y.unwrap() }";
        let ids = idents(src);
        let unwraps: Vec<bool> = ids
            .iter()
            .filter(|(i, _)| i == "unwrap")
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap() }";
        let ids = idents(src);
        assert!(ids.iter().any(|(i, t)| i == "unwrap" && !t));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb\nc */\nlet s = \"x\ny\";\nHashMap";
        let toks = lex(src);
        let h = toks.iter().find(|t| t.is_ident("HashMap")).unwrap();
        assert_eq!(h.line, 6);
    }
}
