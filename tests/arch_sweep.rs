//! The `--arch` axis end to end: selecting the default K40 entry from
//! the registry is byte-identical to not selecting anything (the
//! registry is a view over the paper's constants, not a re-derivation),
//! newer architectures actually re-parameterize the whole stack, and
//! the protocol auto-tuner reaches different decisions per arch.

use datatype::testutil::{arb_datatype, buffer_span};
use datatype::DataType;
use gpusim::{GpuArch, GpuWorld as _};
use memsim::MemSpace;
use mpirt::tuner::{tuned_shape, PathClass};
use mpirt::{ping_pong, PingPongSpec, Session};
use simcore::rng::SimRng;
use simcore::SimTime;

fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

/// Round-trip time of a 2-iteration ping-pong of `ty` between two GPUs
/// on one node of the given session.
fn rtt(mut sess: Session, ty: &DataType) -> SimTime {
    let (_, len) = buffer_span(ty, 1);
    let len = (len as u64).max(1);
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let b0 = sess.world.mem().alloc(MemSpace::Device(gpu0), len).unwrap();
    let b1 = sess.world.mem().alloc(MemSpace::Device(gpu1), len).unwrap();
    ping_pong(
        &mut sess,
        PingPongSpec {
            ty0: ty.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty.clone(),
            count1: 1,
            buf1: b1,
            iters: 2,
        },
    )
}

fn two_gpu_session(arch: &'static GpuArch) -> Session {
    Session::builder().arch(arch).two_ranks_two_gpus().build()
}

/// Property: for seeded random datatype trees, a session built with the
/// K40 registry entry (by reference or by alias) completes transfers at
/// exactly the virtual times of a session built with no arch at all.
/// This is the byte-identity guarantee behind the committed `results/`
/// CSVs, checked on workloads nobody hand-picked.
#[test]
fn k40_registry_entry_is_identical_to_the_default() {
    let mut r = SimRng::new(0xa5c4_0001);
    let mut checked = 0;
    while checked < 12 {
        let ty = arb_datatype(&mut r).commit();
        if ty.size() == 0 {
            continue;
        }
        checked += 1;
        let implicit = rtt(Session::builder().two_ranks_two_gpus().build(), &ty);
        let by_ref = rtt(two_gpu_session(GpuArch::default_arch()), &ty);
        let by_alias = rtt(
            Session::builder()
                .arch("Tesla-K40")
                .two_ranks_two_gpus()
                .build(),
            &ty,
        );
        assert_eq!(implicit, by_ref, "arch(k40) must not perturb {ty}");
        assert_eq!(implicit, by_alias, "alias lookup must not perturb {ty}");
    }
}

/// Cross-arch sanity: the registry constants point the right way
/// (launch overhead shrank, NVLink beats PCIe P2P) and the end-to-end
/// simulation agrees — the same workload finishes faster on newer
/// parts.
#[test]
fn newer_archs_are_faster_end_to_end() {
    let k40 = GpuArch::default_arch();
    let a100 = GpuArch::named("a100");
    assert!(a100.cost().launch_ns < k40.cost().launch_ns);
    assert!(
        a100.cost().p2p_gbps > k40.cost().p2p_gbps,
        "NVLink p2p must beat PCIe p2p"
    );

    let t = triangular(1024);
    let on_k40 = rtt(two_gpu_session(k40), &t);
    let on_a100 = rtt(two_gpu_session(a100), &t);
    assert!(
        on_a100 < on_k40,
        "a100 {on_a100} should beat k40 {on_k40} on the triangular workload"
    );
}

/// The resolved architecture is visible on the session and stamped into
/// its metrics (and from there into `--trace` JSON).
#[test]
fn session_reports_resolved_arch() {
    let mut sess = Session::builder()
        .arch("volta")
        .two_ranks_two_gpus()
        .build();
    assert_eq!(sess.arch().name, "v100");
    assert_eq!(sess.metrics().arch, Some("v100"));
    assert_eq!(sess.world.gpus_ref().arch.name, "v100");

    let plain = Session::builder().two_ranks_two_gpus().build();
    assert_eq!(plain.arch().name, "k40");
    assert_eq!(plain.finish().arch, Some("k40"));
}

/// The auto-tuner keys its cache on the architecture and its decisions
/// actually move: the same (layout, size, path) resolves to different
/// pipeline shapes on at least two registered architectures, because
/// the closed-form makespan folds in per-arch launch/bandwidth
/// constants.
#[test]
fn tuner_decisions_diverge_across_archs() {
    let workloads: Vec<DataType> = vec![
        DataType::vector(4096, 2, 4, &DataType::double())
            .unwrap()
            .commit(),
        triangular(512),
        triangular(1024),
        triangular(2048),
    ];
    let classes = [PathClass::SmIpc, PathClass::CopyInOut, PathClass::ZeroCopy];
    let mut vectors: Vec<(&str, Vec<(u64, usize)>)> = Vec::new();
    for arch in GpuArch::registry() {
        let mut sess = two_gpu_session(arch);
        let (frag0, depth0) = {
            let cfg = &sess.world.mpi.config;
            (cfg.frag_size, cfg.pipeline_depth)
        };
        let mut decisions = Vec::new();
        for ty in &workloads {
            let mk_side = |sess: &mut Session, rank: usize| {
                let gpu = sess.world.mpi.ranks[rank].gpu;
                let buf = sess
                    .world
                    .mem()
                    .alloc(MemSpace::Device(gpu), ty.extent() as u64)
                    .unwrap();
                mpirt::protocol::Side {
                    rank,
                    ty: ty.clone(),
                    count: 1,
                    buf,
                }
            };
            let s = mk_side(&mut sess, 0);
            let r = mk_side(&mut sess, 1);
            for class in classes {
                decisions.push(tuned_shape(&mut sess, &s, &r, class, frag0, depth0));
            }
        }
        // Every cached key carries this arch's name.
        assert!(!sess.world.mpi.tuned_shapes.is_empty());
        for key in sess.world.mpi.tuned_shapes.keys() {
            assert_eq!(key.arch, arch.name);
        }
        vectors.push((arch.name, decisions));
    }
    let distinct: std::collections::BTreeSet<_> = vectors.iter().map(|(_, v)| v.clone()).collect();
    assert!(
        distinct.len() >= 2,
        "the tuner should pick different pipeline shapes across archs, got {vectors:?}"
    );
}
