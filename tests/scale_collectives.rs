//! Full-stack collectives past the paper's two-rank testbeds: N-rank
//! worlds laid out by `netsim::Topology` through
//! `Session::builder().ranks(n).topology(...)`.
//!
//! Every transfer here still runs the complete protocol stack —
//! matching, rendezvous, channel scheduling — just on bigger jobs; the
//! message-level shard engine (`mpirt::scale`, `scale_soak`) covers the
//! 1024-rank regime these worlds are too detailed for.

use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr};
use mpirt::{allgather, alltoall, barrier, bcast, fence, get, put, RmaArgs, Session, Win};
use netsim::{ChannelKind, Topology};

fn contig(bytes: u64) -> DataType {
    DataType::contiguous(bytes / 8, &DataType::double())
        .unwrap()
        .commit()
}

fn host_alloc(sess: &mut Session, bytes: u64) -> Ptr {
    sess.world.mem().alloc(MemSpace::Host, bytes).unwrap()
}

#[test]
fn topology_places_ranks_on_nodes() {
    let sess = Session::builder()
        .ranks(16)
        .topology(Topology::FatTree {
            ranks_per_node: 4,
            radix: 2,
        })
        .build();
    // Four ranks per node: 0..4 share a node, 4 is one hop away.
    assert!(sess.world.same_node(0, 3));
    assert!(!sess.world.same_node(0, 4));
    assert_eq!(
        sess.world.cluster.net_system.kind(0, 3),
        ChannelKind::SharedMemory
    );
    assert_eq!(
        sess.world.cluster.net_system.kind(0, 4),
        ChannelKind::InfiniBand
    );
}

#[test]
fn bcast_reaches_64_ranks_on_a_fat_tree() {
    let n = 64usize;
    let mut sess = Session::builder()
        .ranks(n)
        .topology(Topology::FatTree {
            ranks_per_node: 4,
            radix: 4,
        })
        .build();
    let ty = contig(2048);
    let len = ty.size();
    let bufs: Vec<Ptr> = (0..n).map(|_| host_alloc(&mut sess, len)).collect();
    let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    sess.world.mem().write(bufs[5], &data).unwrap(); // root = 5
    let req = bcast(&mut sess, 5, &ty, 1, &bufs, 0);
    sess.run();
    assert!(req.is_complete());
    for (r, b) in bufs.iter().enumerate() {
        let got = sess.world.mem().read_vec(*b, len).unwrap();
        assert_eq!(got, data, "rank {r}");
    }
}

#[test]
fn allgather_assembles_32_rank_ring() {
    let n = 32usize;
    let mut sess = Session::builder()
        .ranks(n)
        .topology(Topology::Ring { ranks_per_node: 2 })
        .build();
    let ty = contig(512);
    let block = ty.size();
    let sends: Vec<Ptr> = (0..n).map(|_| host_alloc(&mut sess, block)).collect();
    let recvs: Vec<Ptr> = (0..n)
        .map(|_| host_alloc(&mut sess, block * n as u64))
        .collect();
    for (r, s) in sends.iter().enumerate() {
        let d = vec![r as u8 + 1; block as usize];
        sess.world.mem().write(*s, &d).unwrap();
    }
    let req = allgather(&mut sess, &ty, 1, &sends, &recvs, 0);
    sess.run();
    assert!(req.is_complete());
    for (r, b) in recvs.iter().enumerate() {
        let got = sess.world.mem().read_vec(*b, block * n as u64).unwrap();
        for i in 0..n {
            assert!(
                got[i * block as usize..(i + 1) * block as usize]
                    .iter()
                    .all(|&x| x == i as u8 + 1),
                "rank {r} block {i}"
            );
        }
    }
}

#[test]
fn alltoall_transposes_16_ranks_on_a_dragonfly() {
    let n = 16usize;
    let mut sess = Session::builder()
        .ranks(n)
        .topology(Topology::Dragonfly {
            ranks_per_node: 2,
            group_size: 2,
        })
        .build();
    let ty = contig(256);
    let block = ty.size();
    let sends: Vec<Ptr> = (0..n)
        .map(|_| host_alloc(&mut sess, block * n as u64))
        .collect();
    let recvs: Vec<Ptr> = (0..n)
        .map(|_| host_alloc(&mut sess, block * n as u64))
        .collect();
    for (r, s) in sends.iter().enumerate() {
        let mut d = vec![0u8; (block * n as u64) as usize];
        for i in 0..n {
            d[i * block as usize..(i + 1) * block as usize].fill((r * n + i) as u8);
        }
        sess.world.mem().write(*s, &d).unwrap();
    }
    let req = alltoall(&mut sess, &ty, 1, &sends, &recvs, 0);
    sess.run();
    assert!(req.is_complete());
    for (r, b) in recvs.iter().enumerate() {
        let got = sess.world.mem().read_vec(*b, block * n as u64).unwrap();
        for i in 0..n {
            let expect = (i * n + r) as u8;
            assert!(
                got[i * block as usize..(i + 1) * block as usize]
                    .iter()
                    .all(|&x| x == expect),
                "rank {r} block {i}"
            );
        }
    }
}

#[test]
fn barrier_synchronizes_64_ranks() {
    let mut sess = Session::builder().ranks(64).build();
    let req = barrier(&mut sess, 0);
    sess.run();
    assert!(req.is_complete());
}

#[test]
fn rma_put_get_ring_on_32_ranks() {
    let n = 32usize;
    let mut sess = Session::builder().ranks(n).build();
    let ty = contig(1024);
    let len = ty.size();
    let win_bufs: Vec<Ptr> = (0..n).map(|_| host_alloc(&mut sess, len)).collect();
    let win = Win::create(&sess, win_bufs.clone(), vec![len; n]);
    let origins: Vec<Ptr> = (0..n).map(|_| host_alloc(&mut sess, len)).collect();
    for (r, o) in origins.iter().enumerate() {
        let d = vec![r as u8 + 1; len as usize];
        sess.world.mem().write(*o, &d).unwrap();
    }
    // Every rank puts into its right neighbor's window.
    let puts: Vec<_> = (0..n)
        .map(|r| {
            put(
                &mut sess,
                &win,
                r,
                RmaArgs {
                    ty: ty.clone(),
                    count: 1,
                },
                origins[r],
                (r + 1) % n,
                0,
                RmaArgs {
                    ty: ty.clone(),
                    count: 1,
                },
            )
        })
        .collect();
    let f = fence(&mut sess, 0);
    sess.run();
    assert!(puts.iter().all(|p| p.is_complete()) && f.is_complete());
    for (r, wb) in win_bufs.iter().enumerate() {
        let got = sess.world.mem().read_vec(*wb, len).unwrap();
        let left = (r + n - 1) % n;
        assert!(
            got.iter().all(|&x| x == left as u8 + 1),
            "rank {r}'s window should hold rank {left}'s put"
        );
    }
    // And every rank gets its left neighbor's window back.
    let gets: Vec<_> = (0..n)
        .map(|r| {
            get(
                &mut sess,
                &win,
                r,
                RmaArgs {
                    ty: ty.clone(),
                    count: 1,
                },
                origins[r],
                (r + n - 1) % n,
                0,
                RmaArgs {
                    ty: ty.clone(),
                    count: 1,
                },
            )
        })
        .collect();
    let f = fence(&mut sess, 1);
    sess.run();
    assert!(gets.iter().all(|g| g.is_complete()) && f.is_complete());
    for (r, o) in origins.iter().enumerate() {
        let got = sess.world.mem().read_vec(*o, len).unwrap();
        let two_left = (r + n - 2) % n;
        assert!(
            got.iter().all(|&x| x == two_left as u8 + 1),
            "rank {r} should read the value rank {two_left} put two hops back"
        );
    }
}
