//! Failure injection across the stack: wrong usage must fail loudly and
//! precisely, not corrupt data.

use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{GpuId, MemError, MemSpace};
use mpirt::api::{irecv, isend, RecvArgs, SendArgs};
use mpirt::{MpiConfig, MpiError, MpiWorld};
use simcore::Sim;

fn world() -> Sim<MpiWorld> {
    Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()))
}

#[test]
fn signature_mismatch_is_reported_not_corrupted() {
    let mut sim = world();
    let send_ty = DataType::contiguous(20_000, &DataType::double())
        .unwrap()
        .commit();
    let recv_ty = DataType::contiguous(40_000, &DataType::float())
        .unwrap()
        .commit();
    let sbuf = sim
        .world
        .mem()
        .alloc(MemSpace::Host, send_ty.size())
        .unwrap();
    let rbuf = sim
        .world
        .mem()
        .alloc(MemSpace::Host, recv_ty.size())
        .unwrap();
    sim.world.mem().write(sbuf, &vec![7u8; 160_000]).unwrap();
    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: send_ty,
            count: 1,
            buf: sbuf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: recv_ty.clone(),
            count: 1,
            buf: rbuf,
        },
    );
    sim.run();
    assert!(matches!(s.result(), Some(Err(MpiError::Type(_)))));
    assert!(matches!(r.result(), Some(Err(MpiError::Type(_)))));
    // Receive buffer untouched.
    let got = sim.world.mem().read_vec(rbuf, recv_ty.size()).unwrap();
    assert!(
        got.iter().all(|&b| b == 0),
        "failed receive must not write data"
    );
}

#[test]
fn eager_signature_mismatch_fails_receiver_only() {
    let mut sim = world();
    let send_ty = DataType::contiguous(8, &DataType::double())
        .unwrap()
        .commit();
    let recv_ty = DataType::contiguous(16, &DataType::int()).unwrap().commit();
    let sbuf = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let rbuf = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: send_ty,
            count: 1,
            buf: sbuf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: recv_ty,
            count: 1,
            buf: rbuf,
        },
    );
    sim.run();
    // Eager sends complete once buffered (MPI semantics) …
    assert!(matches!(s.result(), Some(Ok(64))));
    // … but the mismatched receive fails.
    assert!(matches!(r.result(), Some(Err(MpiError::Type(_)))));
}

#[test]
fn device_oom_is_an_error_not_a_crash() {
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let gpu = MemSpace::Device(GpuId(0));
    let cap = sim.world.mem_ref().pool(gpu).capacity();
    let err = sim.world.mem().alloc(gpu, cap + 1).unwrap_err();
    assert!(matches!(err, MemError::OutOfMemory { .. }));
}

#[test]
fn freed_buffer_cannot_be_read() {
    let mut sim = world();
    let buf = sim.world.mem().alloc(MemSpace::Host, 128).unwrap();
    sim.world.mem().free(buf).unwrap();
    assert!(matches!(
        sim.world.mem().read_vec(buf, 1),
        Err(MemError::InvalidPointer(_))
    ));
}

#[test]
fn rdma_to_unregistered_memory_is_a_typed_error() {
    let mut sim = world();
    let a = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let b = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let err = netsim::rdma_get(&mut sim, 0, 1, a, b, 64, |_| {}).unwrap_err();
    assert!(matches!(
        err,
        netsim::NetError::Mem(MemError::NotRegistered(_))
    ));
    assert!(!sim.step(), "failed RDMA must schedule nothing");
}

#[test]
fn unmatched_rendezvous_is_detected_as_stall() {
    let mut sim = world();
    let t = DataType::contiguous(100_000, &DataType::double())
        .unwrap()
        .commit();
    let sbuf = sim.world.mem().alloc(MemSpace::Host, t.size()).unwrap();
    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: t,
            count: 1,
            buf: sbuf,
        },
    );
    // No matching receive: wait_all must detect the stall rather than
    // spin forever — and report it as a typed error, not a panic.
    let err = mpirt::api::wait_all(&mut sim, &[s]).unwrap_err();
    assert_eq!(err, MpiError::Stalled);
}

#[test]
fn wrong_tag_leaves_message_unexpected() {
    let mut sim = world();
    let t = DataType::contiguous(8, &DataType::double())
        .unwrap()
        .commit();
    let sbuf = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let rbuf = sim.world.mem().alloc(MemSpace::Host, 64).unwrap();
    let _s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 5,
            ty: t.clone(),
            count: 1,
            buf: sbuf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(6),
            ty: t,
            count: 1,
            buf: rbuf,
        },
    );
    sim.run();
    assert!(!r.is_complete(), "mismatched tag must not match");
    assert_eq!(sim.world.mpi.matcher.pending(), 2);
}

#[test]
fn uncommitted_datatype_rejected_at_api_boundary() {
    let mut sim = world();
    let raw = DataType::vector(4, 1, 2, &DataType::double()).unwrap(); // no commit
    let buf = sim.world.mem().alloc(MemSpace::Host, 1024).unwrap();
    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: raw.clone(),
            count: 1,
            buf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: raw,
            count: 1,
            buf,
        },
    );
    assert!(matches!(s.result(), Some(Err(MpiError::Type(_)))));
    assert!(matches!(r.result(), Some(Err(MpiError::Type(_)))));
}

#[test]
#[should_panic(expected = "self-sends")]
fn self_send_rejected() {
    let mut sim = world();
    let t = DataType::double().commit();
    let buf = sim.world.mem().alloc(MemSpace::Host, 8).unwrap();
    let _ = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 0,
            tag: 0,
            ty: t,
            count: 1,
            buf,
        },
    );
}
