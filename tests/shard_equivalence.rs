//! The tentpole's contract, stated as a property: running the scale
//! model on N shards is *bit-identical* to running it on one — event
//! timestamps, delivered-byte counters, retry counts, the merged
//! Chrome trace — across rank counts, seeded random collective
//! workloads, and live fault plans. Parallelism must be purely a
//! wall-clock optimization.

use faultsim::{FaultKind, FaultOp, FaultPlan};
use mpirt::scale::{self, random_program, ScaleConfig, ScaleOp};
use netsim::Topology;
use simcore::trace::names;

/// Fingerprint everything observable about a run.
fn fingerprint(r: &scale::ScaleReport) -> (u64, u64, u64, u64, u64, String) {
    (
        r.executed,
        r.end_time.as_nanos(),
        r.msgs,
        r.bytes,
        r.digest,
        r.trace.chrome_json("equiv"),
    )
}

fn plan() -> FaultPlan {
    FaultPlan::default()
        .with_seed(41)
        .with_rule(Some(FaultOp::WireCopy), FaultKind::Transient, 0.02)
        .with_rule(Some(FaultOp::AmDeliver), FaultKind::Transient, 0.01)
        .with_rule(
            Some(FaultOp::WireCopy),
            FaultKind::Degrade { factor: 1.5 },
            1.0,
        )
}

#[test]
fn n_shard_runs_are_bit_identical_to_one_shard() {
    for &(ranks, steps) in &[(8u32, 6usize), (64, 4), (256, 2)] {
        for seed in [1u64, 2] {
            let mut cfg = ScaleConfig::new(ranks, random_program(seed, ranks, steps));
            cfg.topo = Topology::FatTree {
                ranks_per_node: 4,
                radix: 4,
            };
            cfg.fault_plan = plan();
            cfg.seed = seed ^ 0xDEC0DE;
            let reference = scale::run(&cfg, 1, true);
            assert!(reference.msgs > 0, "workload must exchange messages");
            let want = fingerprint(&reference);
            for shards in [2u32, 4, 8] {
                if shards > ranks {
                    continue;
                }
                let got = fingerprint(&scale::run(&cfg, shards, true));
                assert_eq!(
                    got, want,
                    "ranks={ranks} seed={seed} shards={shards} diverged from 1-shard"
                );
            }
        }
    }
}

#[test]
fn topologies_and_ops_all_hold_the_property() {
    // One targeted program per op kind, on the topology that stresses
    // it, rather than trusting the random mix to cover everything.
    let cases: Vec<(u32, Topology, Vec<ScaleOp>)> = vec![
        (
            16,
            Topology::Ring { ranks_per_node: 1 },
            vec![ScaleOp::Bcast {
                root: 9,
                bytes: 8192,
            }],
        ),
        (
            16,
            Topology::Ring { ranks_per_node: 2 },
            vec![ScaleOp::Allgather { bytes: 2048 }],
        ),
        (
            12,
            Topology::Dragonfly {
                ranks_per_node: 2,
                group_size: 3,
            },
            vec![ScaleOp::Alltoall { bytes: 512 }],
        ),
        (
            16,
            Topology::FatTree {
                ranks_per_node: 2,
                radix: 4,
            },
            vec![ScaleOp::Barrier, ScaleOp::PutRing { bytes: 4096 }],
        ),
        (
            16,
            Topology::FatTree {
                ranks_per_node: 4,
                radix: 2,
            },
            vec![ScaleOp::GetRing { bytes: 4096 }, ScaleOp::Barrier],
        ),
    ];
    for (ranks, topo, program) in cases {
        let mut cfg = ScaleConfig::new(ranks, program.clone());
        cfg.topo = topo;
        cfg.fault_plan = plan();
        let want = fingerprint(&scale::run(&cfg, 1, true));
        for shards in [2u32, 4] {
            let got = fingerprint(&scale::run(&cfg, shards, true));
            assert_eq!(got, want, "{topo:?} {program:?} shards={shards}");
        }
    }
}

#[test]
fn retries_are_partition_independent() {
    // The per-rank fault streams are the satellite under test here:
    // the *count and placement* of injected faults must not move when
    // the shard count changes.
    let mut cfg = ScaleConfig::new(32, vec![ScaleOp::Alltoall { bytes: 1024 }]);
    cfg.fault_plan = FaultPlan::default().with_seed(5).with_rule(
        Some(FaultOp::WireCopy),
        FaultKind::Transient,
        0.2,
    );
    let reference = scale::run(&cfg, 1, false);
    let retries_ref: Vec<u64> = (0..32)
        .map(|r| reference.trace.counter_at(names::RETRY_ATTEMPTS, r, 0))
        .collect();
    assert!(
        retries_ref.iter().sum::<u64>() > 0,
        "plan must actually inject"
    );
    for shards in [2u32, 8] {
        let run = scale::run(&cfg, shards, false);
        let retries: Vec<u64> = (0..32)
            .map(|r| run.trace.counter_at(names::RETRY_ATTEMPTS, r, 0))
            .collect();
        assert_eq!(retries, retries_ref, "shards={shards}");
    }
}
