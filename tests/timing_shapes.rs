//! Performance-shape assertions: the qualitative results of the
//! paper's evaluation must hold in the simulation (who wins, roughly by
//! how much, where the crossovers are). These guard the cost models
//! against regressions.

use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{GpuId, MemSpace, Ptr};
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig, MpiWorld};
use simcore::{Sim, SimTime};

fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

fn submatrix(n: u64) -> DataType {
    DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .unwrap()
        .commit()
}

fn alloc_dev(sim: &mut Sim<MpiWorld>, rank: usize, bytes: u64) -> Ptr {
    let gpu = sim.world.mpi.ranks[rank].gpu;
    sim.world.mem().alloc(MemSpace::Device(gpu), bytes).unwrap()
}

fn rtt(mut sim: Sim<MpiWorld>, ty: &DataType, iters: u32) -> SimTime {
    let len = (ty.true_ub() - ty.true_lb().min(0)) as u64;
    let b0 = alloc_dev(&mut sim, 0, len);
    let b1 = alloc_dev(&mut sim, 1, len);
    ping_pong(
        &mut sim,
        PingPongSpec {
            ty0: ty.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty.clone(),
            count1: 1,
            buf1: b1,
            iters,
        },
    )
}

/// §5.2.1: intra-GPU is at least 2x faster than inter-GPU (no PCIe
/// crossing once packed).
#[test]
fn intra_gpu_at_least_2x_faster_than_inter_gpu() {
    let t = triangular(1024);
    let one = rtt(
        Sim::new(MpiWorld::two_ranks_one_gpu(MpiConfig::default())),
        &t,
        3,
    );
    let two = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &t,
        3,
    );
    assert!(
        one.as_nanos() * 2 <= two.as_nanos(),
        "1GPU {one} should be >=2x faster than 2GPU {two}"
    );
}

/// InfiniBand (6 GB/s) is slower than same-node PCIe P2P (11 GB/s).
#[test]
fn ib_slower_than_sm() {
    let v = submatrix(1024);
    let sm = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &v,
        3,
    );
    let ib = rtt(
        Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default())),
        &v,
        3,
    );
    assert!(sm < ib, "SM {sm} should beat IB {ib}");
}

/// §5.2: the pipelined transfer achieves ~90% of the contiguous rate
/// for the vector type — pack/unpack almost fully hides behind PCIe.
#[test]
fn vector_pingpong_within_15pct_of_contiguous() {
    let n = 2048u64;
    let v = submatrix(n);
    let c = DataType::contiguous(n * n, &DataType::double())
        .unwrap()
        .commit();
    let tv = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &v,
        3,
    );
    let tc = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &c,
        3,
    );
    let ratio = tv.as_secs_f64() / tc.as_secs_f64();
    assert!(
        (1.0..1.18).contains(&ratio),
        "vector should be within 15% of contiguous, ratio {ratio}"
    );
}

/// §4.2: zero-copy beats explicit staging copies on the IB path.
#[test]
fn zero_copy_not_slower_than_staged() {
    let t = triangular(1024);
    let zc = rtt(
        Sim::new(MpiWorld::two_ranks_ib(MpiConfig {
            zero_copy: true,
            ..Default::default()
        })),
        &t,
        3,
    );
    let staged = rtt(
        Sim::new(MpiWorld::two_ranks_ib(MpiConfig {
            zero_copy: false,
            ..Default::default()
        })),
        &t,
        3,
    );
    assert!(
        zc <= staged,
        "zero-copy {zc} should not lose to staging {staged}"
    );
}

/// §4.1: disabling IPC (copy-in/out fallback) costs performance in the
/// shared-memory GPU case.
#[test]
fn ipc_rdma_beats_copy_in_out_fallback() {
    let t = triangular(1024);
    let rdma = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &t,
        3,
    );
    let fallback = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig {
            use_ipc: false,
            ..Default::default()
        })),
        &t,
        3,
    );
    assert!(
        rdma < fallback,
        "RDMA {rdma} should beat copy-in/out {fallback}"
    );
}

/// §5.2.1: receiver-side local staging beats unpacking directly out of
/// remote GPU memory (by the paper's 10-15%).
#[test]
fn local_staging_beats_direct_remote_unpack() {
    let t = triangular(1024);
    let staged = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig {
            recv_local_staging: true,
            ..Default::default()
        })),
        &t,
        3,
    );
    let direct = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig {
            recv_local_staging: false,
            ..Default::default()
        })),
        &t,
        3,
    );
    assert!(
        staged < direct,
        "staging {staged} should beat direct remote access {direct}"
    );
    let ratio = direct.as_secs_f64() / staged.as_secs_f64();
    assert!(
        ratio < 1.4,
        "the gap should be moderate (paper: 10-15%), got {ratio}"
    );
}

/// Eager messages complete the send before any receive is posted.
#[test]
fn eager_send_completes_without_receiver() {
    let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
    let t = DataType::contiguous(64, &DataType::double())
        .unwrap()
        .commit();
    let buf = alloc_dev(&mut sim, 0, t.size());
    let s = mpirt::api::isend(
        &mut sim,
        mpirt::api::SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: t,
            count: 1,
            buf,
        },
    );
    sim.run();
    assert!(s.is_complete(), "eager send must complete unilaterally");
}

/// The sender's GPU footprint for the pipeline is bounded by the ring,
/// not the message (the paper's reduced-memory argument): a 32 MB
/// message needs only pipeline_depth x frag_size of staging.
#[test]
fn pipeline_memory_is_bounded_by_ring() {
    let t = triangular(2048); // ~16.8 MB message
    let cfg = MpiConfig::default();
    let ring_budget = cfg.frag_size * cfg.pipeline_depth as u64;
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(cfg));
    let len = (t.true_ub()) as u64;
    let b0 = alloc_dev(&mut sim, 0, len);
    let b1 = alloc_dev(&mut sim, 1, len);
    let user_bytes = sim.world.mem_ref().pool(MemSpace::Device(GpuId(0))).used();
    let _ = ping_pong(
        &mut sim,
        PingPongSpec {
            ty0: t.clone(),
            count0: 1,
            buf0: b0,
            ty1: t.clone(),
            count1: 1,
            buf1: b1,
            iters: 1,
        },
    );
    let peak = sim.world.mem_ref().pool(MemSpace::Device(GpuId(0))).peak();
    let staging_peak = peak - user_bytes;
    // GPU 0 hosts two rings: the 0->1 send ring and the 1->0 receive
    // staging ring.
    assert!(
        staging_peak <= 2 * ring_budget + (1 << 20),
        "sender staging {staging_peak} should be bounded by the rings ({ring_budget} each), \
         not the {len}-byte message"
    );
}

/// The trace-derived overlap metric captures the paper's core claim:
/// with the engine pipeline on, CPU DEV preparation overlaps the pack
/// kernels; with it off the stages strictly serialize.
#[test]
fn engine_pipeline_overlap_visible_in_metrics() {
    use devengine::{pack_async, EngineConfig};
    use mpirt::{RankSpec, Session};

    fn overlap(pipeline: bool) -> f64 {
        use devengine::OptimizerConfig;
        let t = triangular(1024);
        let mut sess = Session::builder()
            .rank_specs(
                &[RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                }],
                1,
            )
            .record()
            .build();
        let len = t.true_ub() as u64;
        let typed = sess
            .world
            .mem()
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let packed = sess
            .world
            .mem()
            .alloc(MemSpace::Device(GpuId(0)), t.size())
            .unwrap();
        let stream = sess.world.mpi.ranks[0].kernel_stream;
        // Pinned pre-optimizer: coalescing shrinks prep until the tuner
        // (correctly) collapses to one kernel — this test is about the
        // pipeline mechanics themselves.
        let cfg = EngineConfig {
            pipeline,
            optimizer: OptimizerConfig::disabled(),
            ..Default::default()
        };
        pack_async(
            &mut sess,
            0,
            stream,
            &t,
            1,
            typed,
            packed,
            cfg,
            None,
            |_, _| {},
        );
        sess.run();
        sess.finish().overlap_pct
    }

    let piped = overlap(true);
    let serial = overlap(false);
    assert!(
        piped > 10.0,
        "pipelined prep should overlap the kernels, got {piped}%"
    );
    assert!(
        serial < 1.0,
        "un-pipelined stages should serialize, got {serial}%"
    );
}

/// The full protocol pipeline shows both stage overlap and multiple
/// ring fragments in flight in its recorded trace.
#[test]
fn pipelined_protocol_shows_overlap_and_ring_residency() {
    let t = triangular(1024);
    let mut sess = mpirt::Session::builder()
        .two_ranks_two_gpus()
        .record()
        .build();
    let len = (t.true_ub() - t.true_lb().min(0)) as u64;
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let b0 = sess.world.mem().alloc(MemSpace::Device(gpu0), len).unwrap();
    let b1 = sess.world.mem().alloc(MemSpace::Device(gpu1), len).unwrap();
    ping_pong(
        &mut sess,
        PingPongSpec {
            ty0: t.clone(),
            count0: 1,
            buf0: b0,
            ty1: t.clone(),
            count1: 1,
            buf1: b1,
            iters: 2,
        },
    );
    let m = sess.finish();
    assert!(
        m.overlap_pct > 5.0,
        "protocol stages should overlap, got {}%",
        m.overlap_pct
    );
    assert!(
        m.ring_residency > 1.0,
        "the fragment ring should keep >1 fragment in flight, got {}",
        m.ring_residency
    );
    // Warm-up round + 2 measured rounds, two transfers each.
    assert_eq!(m.counter("mpi.delivered.bytes"), 6 * t.size());
}

/// exp13 shape: two thread blocks already get within 10% of the full
/// GPU for the vector workload (PCIe is the bottleneck).
#[test]
fn few_blocks_saturate_communication() {
    let v = submatrix(1024);
    let full = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default())),
        &v,
        3,
    );
    let two_blocks_cfg = MpiConfig {
        engine: devengine::EngineConfig {
            blocks: Some(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let two = rtt(
        Sim::new(MpiWorld::two_ranks_two_gpus(two_blocks_cfg)),
        &v,
        3,
    );
    let ratio = two.as_secs_f64() / full.as_secs_f64();
    assert!(
        ratio < 1.10,
        "2 blocks should be within 10% of 15, got {ratio}"
    );
}
