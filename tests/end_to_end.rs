//! End-to-end correctness: arbitrary datatypes through the full MPI
//! stack, across every protocol/topology/buffer-space combination,
//! validated against the CPU reference engine.

use datatype::testutil::{arb_datatype, buffer_span, pattern, reference_pack};
use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr};
use mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use mpirt::{MpiConfig, MpiWorld};
use simcore::rng::SimRng;
use simcore::Sim;

fn alloc_typed(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    ty: &DataType,
    count: u64,
    device: bool,
    fill: bool,
) -> (Ptr, Vec<u8>, i64, u64) {
    let (base, len) = buffer_span(ty, count);
    let space = if device {
        MemSpace::Device(sim.world.mpi.ranks[rank].gpu)
    } else {
        MemSpace::Host
    };
    let buf = sim.world.mem().alloc(space, len.max(1) as u64).unwrap();
    let bytes = if fill { pattern(len) } else { vec![0u8; len] };
    sim.world.mem().write(buf, &bytes).unwrap();
    (buf.add(base as u64), bytes, base, len as u64)
}

/// Send `count` instances of `ty` from rank 0 to rank 1 and assert the
/// packed stream arrives intact.
fn roundtrip(mut sim: Sim<MpiWorld>, ty: &DataType, count: u64, s_dev: bool, r_dev: bool) {
    let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, ty, count, s_dev, true);
    let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, ty, count, r_dev, false);
    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 3,
            ty: ty.clone(),
            count,
            buf: sbuf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(3),
            ty: ty.clone(),
            count,
            buf: rbuf,
        },
    );
    wait_all(&mut sim, &[s, r]).expect("transfer failed");
    let got_buf = sim
        .world
        .mem()
        .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
        .unwrap();
    let got = reference_pack(ty, count, &got_buf, rbase);
    let want = reference_pack(ty, count, &sbytes, sbase);
    assert_eq!(got, want, "payload mismatch for {ty} x{count}");
    // The trace's delivered-bytes counter is maintained by the same
    // completion events that wrote the data, so it must equal the
    // datatype's payload exactly — a second, independent correctness
    // check on every protocol path.
    assert_eq!(
        sim.trace.counter("mpi.delivered.bytes"),
        ty.size() * count,
        "trace delivered bytes for {ty} x{count}"
    );
}

fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

/// Every topology × buffer-space combination for a fixed interesting
/// type (big enough for rendezvous).
#[test]
fn protocol_matrix() {
    let t = triangular(160); // ~103 KB
    let topologies: [fn(MpiConfig) -> MpiWorld; 3] = [
        MpiWorld::two_ranks_one_gpu,
        MpiWorld::two_ranks_two_gpus,
        MpiWorld::two_ranks_ib,
    ];
    for mk in topologies {
        for (s_dev, r_dev) in [(true, true), (true, false), (false, true), (false, false)] {
            let sim = Sim::new(mk(MpiConfig::default()));
            roundtrip(sim, &t, 1, s_dev, r_dev);
        }
    }
}

/// Config ablations: IPC off, zero-copy off, staging off, tiny
/// fragments, shallow pipeline.
#[test]
fn config_ablations_preserve_correctness() {
    let t = triangular(160);
    let configs = [
        MpiConfig {
            use_ipc: false,
            ..Default::default()
        },
        MpiConfig {
            zero_copy: false,
            ..Default::default()
        },
        MpiConfig {
            recv_local_staging: false,
            ..Default::default()
        },
        MpiConfig {
            frag_size: 96 << 10,
            pipeline_depth: 2,
            ..Default::default()
        },
        MpiConfig {
            eager_limit: 0,
            ..Default::default()
        },
        MpiConfig {
            eager_limit: 1 << 30,
            ..Default::default()
        }, // force eager
    ];
    for cfg in configs {
        roundtrip(
            Sim::new(MpiWorld::two_ranks_two_gpus(cfg.clone())),
            &t,
            1,
            true,
            true,
        );
        roundtrip(Sim::new(MpiWorld::two_ranks_ib(cfg)), &t, 1, true, true);
    }
}

/// Asymmetric layouts with matching signatures.
#[test]
fn reshape_transfers() {
    let v = DataType::vector(100, 10, 20, &DataType::double())
        .unwrap()
        .commit();
    let c = DataType::contiguous(1000, &DataType::double())
        .unwrap()
        .commit();
    // vector -> contiguous and contiguous -> vector, SM and IB.
    for mk in [
        MpiWorld::two_ranks_two_gpus as fn(MpiConfig) -> MpiWorld,
        MpiWorld::two_ranks_ib,
    ] {
        for (a, b) in [(&v, &c), (&c, &v)] {
            let mut sim = Sim::new(mk(MpiConfig::default()));
            let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, a, 1, true, true);
            let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, b, 1, true, false);
            let s = isend(
                &mut sim,
                SendArgs {
                    from: 0,
                    to: 1,
                    tag: 9,
                    ty: a.clone(),
                    count: 1,
                    buf: sbuf,
                },
            );
            let r = irecv(
                &mut sim,
                RecvArgs {
                    rank: 1,
                    src: Some(0),
                    tag: Some(9),
                    ty: b.clone(),
                    count: 1,
                    buf: rbuf,
                },
            );
            wait_all(&mut sim, &[s, r]).expect("transfer failed");
            let got_buf = sim
                .world
                .mem()
                .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
                .unwrap();
            assert_eq!(
                reference_pack(b, 1, &got_buf, rbase),
                reference_pack(a, 1, &sbytes, sbase)
            );
            assert_eq!(sim.trace.counter("mpi.delivered.bytes"), a.size());
        }
    }
}

/// Several messages in flight between the same pair, distinct tags,
/// interleaved posting order.
#[test]
fn multiple_concurrent_messages() {
    let t = triangular(96);
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let mut reqs = Vec::new();
    let mut bufs = Vec::new();
    for tag in 0..4u64 {
        let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, &t, 1, true, true);
        let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, &t, 1, true, false);
        bufs.push((sbytes, sbase, rbuf, rbase, rlen));
        // Post receives for even tags *before* the sends, odd after.
        if tag % 2 == 0 {
            reqs.push(irecv(
                &mut sim,
                RecvArgs {
                    rank: 1,
                    src: Some(0),
                    tag: Some(tag),
                    ty: t.clone(),
                    count: 1,
                    buf: rbuf,
                },
            ));
        }
        reqs.push(isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
        ));
        if tag % 2 == 1 {
            reqs.push(irecv(
                &mut sim,
                RecvArgs {
                    rank: 1,
                    src: Some(0),
                    tag: Some(tag),
                    ty: t.clone(),
                    count: 1,
                    buf: rbuf,
                },
            ));
        }
    }
    wait_all(&mut sim, &reqs).expect("transfers failed");
    assert_eq!(sim.trace.counter("mpi.delivered.bytes"), 4 * t.size());
    for (sbytes, sbase, rbuf, rbase, rlen) in bufs {
        let got_buf = sim
            .world
            .mem()
            .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
            .unwrap();
        assert_eq!(
            reference_pack(&t, 1, &got_buf, rbase),
            reference_pack(&t, 1, &sbytes, sbase)
        );
    }
}

/// Repeated transfers reuse connections and caches without corruption.
#[test]
fn repeated_transfers_stay_correct() {
    let t = triangular(128);
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, &t, 1, true, true);
    let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, &t, 1, true, false);
    for tag in 0..5u64 {
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
        );
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(tag),
                ty: t.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        wait_all(&mut sim, &[s, r]).expect("transfer failed");
    }
    let got_buf = sim
        .world
        .mem()
        .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
        .unwrap();
    assert_eq!(
        reference_pack(&t, 1, &got_buf, rbase),
        reference_pack(&t, 1, &sbytes, sbase)
    );
    // Exactly one SM connection was established.
    assert_eq!(sim.world.mpi.sm_conns.len(), 1);
    assert_eq!(sim.trace.counter("mpi.delivered.bytes"), 5 * t.size());
}

/// Random datatype trees through the full GPU-to-GPU SM stack.
#[test]
fn random_types_through_sm_stack() {
    let mut r = SimRng::new(0xe2e_0001);
    for _ in 0..48 {
        let ty = arb_datatype(&mut r).commit();
        let count = r.range_u64(1, 3);
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        roundtrip(sim, &ty, count, true, true);
    }
}

/// Random datatype trees through the IB copy-in/out stack with a
/// small fragment size so even modest types pipeline.
#[test]
fn random_types_through_ib_stack() {
    let mut r = SimRng::new(0xe2e_0002);
    for _ in 0..48 {
        let ty = arb_datatype(&mut r).commit();
        let count = r.range_u64(1, 3);
        let cfg = MpiConfig {
            eager_limit: 64,
            frag_size: 4096,
            ..Default::default()
        };
        let sim = Sim::new(MpiWorld::two_ranks_ib(cfg));
        roundtrip(sim, &ty, count, true, true);
    }
}

/// Host-resident random types exercise the CPU convertor path.
#[test]
fn random_types_host_to_host() {
    let mut r = SimRng::new(0xe2e_0003);
    for _ in 0..48 {
        let ty = arb_datatype(&mut r).commit();
        let count = r.range_u64(1, 3);
        let cfg = MpiConfig {
            eager_limit: 64,
            frag_size: 4096,
            ..Default::default()
        };
        let sim = Sim::new(MpiWorld::two_ranks_ib(cfg));
        roundtrip(sim, &ty, count, false, false);
    }
}
