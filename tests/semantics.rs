//! MPI semantics: ordering, wildcards, partial receives, multi-count
//! transfers, collectives and one-sided ops across mixed transports.

use datatype::testutil::{buffer_span, pattern, reference_pack};
use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{GpuId, MemSpace, Ptr};
use mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use mpirt::{MpiConfig, MpiWorld, RankSpec};
use simcore::Sim;

fn alloc(sim: &mut Sim<MpiWorld>, rank: usize, bytes: u64, device: bool) -> Ptr {
    let space = if device {
        MemSpace::Device(sim.world.mpi.ranks[rank].gpu)
    } else {
        MemSpace::Host
    };
    sim.world.mem().alloc(space, bytes).unwrap()
}

/// MPI non-overtaking rule: two messages on the same (src, dst, tag)
/// must match receives in the order they were sent — even when the
/// first is a big rendezvous and the second a small eager message that
/// could physically arrive first.
#[test]
fn non_overtaking_order() {
    let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
    let big = DataType::contiguous(100_000, &DataType::double())
        .unwrap()
        .commit();
    let small = DataType::contiguous(4, &DataType::double())
        .unwrap()
        .commit();

    let sb_big = alloc(&mut sim, 0, big.size(), false);
    let sb_small = alloc(&mut sim, 0, small.size(), false);
    sim.world
        .mem()
        .write(sb_big, &vec![1u8; big.size() as usize])
        .unwrap();
    sim.world
        .mem()
        .write(sb_small, &vec![2u8; small.size() as usize])
        .unwrap();

    let s1 = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 7,
            ty: big.clone(),
            count: 1,
            buf: sb_big,
        },
    );
    let s2 = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 7,
            ty: small.clone(),
            count: 1,
            buf: sb_small,
        },
    );

    // Receives posted with wildcard-compatible types: first posting must
    // get the *first* send (the big one).
    let rb1 = alloc(&mut sim, 1, big.size(), false);
    let rb2 = alloc(&mut sim, 1, big.size(), false);
    let r1 = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(7),
            ty: big.clone(),
            count: 1,
            buf: rb1,
        },
    );
    let r2 = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(7),
            ty: big.clone(),
            count: 1,
            buf: rb2,
        },
    );
    wait_all(&mut sim, &[s1, s2, r1.clone(), r2.clone()]).expect("transfers failed");
    assert_eq!(
        r1.expect_bytes(),
        big.size(),
        "first recv gets the first send"
    );
    assert_eq!(
        r2.expect_bytes(),
        small.size(),
        "second recv gets the second send"
    );
    let got1 = sim.world.mem().read_vec(rb1, 8).unwrap();
    let got2 = sim.world.mem().read_vec(rb2, 8).unwrap();
    assert!(got1.iter().all(|&b| b == 1));
    assert!(got2.iter().all(|&b| b == 2));
}

/// A rendezvous message shorter than the posted receive type fills only
/// the prefix (and reports the actual byte count).
#[test]
fn partial_receive_into_larger_type() {
    let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
    let send_ty = DataType::contiguous(30_000, &DataType::double())
        .unwrap()
        .commit();
    let recv_ty = DataType::vector(20_000, 3, 5, &DataType::double())
        .unwrap()
        .commit();
    assert!(recv_ty.size() > send_ty.size());

    let (rbase, rlen) = buffer_span(&recv_ty, 1);
    let sbuf = alloc(&mut sim, 0, send_ty.size(), true);
    let data = pattern(send_ty.size() as usize);
    sim.world.mem().write(sbuf, &data).unwrap();
    let rbuf = alloc(&mut sim, 1, rlen as u64, true);

    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: send_ty.clone(),
            count: 1,
            buf: sbuf,
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: recv_ty.clone(),
            count: 1,
            buf: rbuf.add(rbase as u64),
        },
    );
    wait_all(&mut sim, &[s, r.clone()]).expect("transfer failed");
    assert_eq!(r.expect_bytes(), send_ty.size());

    // The received prefix, viewed through the recv type, equals the
    // sent stream.
    let got_buf = sim.world.mem().read_vec(rbuf, rlen as u64).unwrap();
    let got_packed = reference_pack(&recv_ty, 1, &got_buf, rbase);
    assert_eq!(&got_packed[..send_ty.size() as usize], &data[..]);
}

/// count > 1 instances of a non-contiguous type across the GPU stack.
#[test]
fn multi_count_gpu_rendezvous() {
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let ty = DataType::vector(32, 4, 9, &DataType::double())
        .unwrap()
        .commit();
    let count = 40u64;
    let (base, len) = buffer_span(&ty, count);
    let sbuf = alloc(&mut sim, 0, len as u64, true);
    let data = pattern(len);
    sim.world.mem().write(sbuf, &data).unwrap();
    let rbuf = alloc(&mut sim, 1, len as u64, true);

    let s = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: ty.clone(),
            count,
            buf: sbuf.add(base as u64),
        },
    );
    let r = irecv(
        &mut sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: ty.clone(),
            count,
            buf: rbuf.add(base as u64),
        },
    );
    wait_all(&mut sim, &[s, r]).expect("transfer failed");
    let got = sim.world.mem().read_vec(rbuf, len as u64).unwrap();
    assert_eq!(
        reference_pack(&ty, count, &got, base),
        reference_pack(&ty, count, &data, base)
    );
}

/// ANY_SOURCE receives match rendezvous sends from whichever rank
/// arrives first.
#[test]
fn any_source_rendezvous() {
    let specs = [
        RankSpec {
            gpu: GpuId(0),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(1),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(2),
            node: 1,
        },
    ];
    let mut sim = Sim::new(MpiWorld::new(&specs, 3, MpiConfig::default()));
    let ty = DataType::contiguous(50_000, &DataType::double())
        .unwrap()
        .commit();
    let b0 = alloc(&mut sim, 0, ty.size(), true);
    let b1 = alloc(&mut sim, 1, ty.size(), true);
    let rb = alloc(&mut sim, 2, ty.size() * 2, true);
    sim.world
        .mem()
        .write(b0, &vec![5u8; ty.size() as usize])
        .unwrap();
    sim.world
        .mem()
        .write(b1, &vec![9u8; ty.size() as usize])
        .unwrap();

    let s0 = isend(
        &mut sim,
        SendArgs {
            from: 0,
            to: 2,
            tag: 1,
            ty: ty.clone(),
            count: 1,
            buf: b0,
        },
    );
    let s1 = isend(
        &mut sim,
        SendArgs {
            from: 1,
            to: 2,
            tag: 1,
            ty: ty.clone(),
            count: 1,
            buf: b1,
        },
    );
    let r0 = irecv(
        &mut sim,
        RecvArgs {
            rank: 2,
            src: None,
            tag: Some(1),
            ty: ty.clone(),
            count: 1,
            buf: rb,
        },
    );
    let r1 = irecv(
        &mut sim,
        RecvArgs {
            rank: 2,
            src: None,
            tag: Some(1),
            ty: ty.clone(),
            count: 1,
            buf: rb.add(ty.size()),
        },
    );
    wait_all(&mut sim, &[s0, s1, r0, r1]).expect("transfers failed");
    let a = sim.world.mem().read_vec(rb, 1).unwrap()[0];
    let b = sim.world.mem().read_vec(rb.add(ty.size()), 1).unwrap()[0];
    let mut got = [a, b];
    got.sort_unstable();
    assert_eq!(got, [5, 9], "both senders delivered somewhere");
}

/// Collectives compose with non-contiguous GPU datatypes over mixed
/// SM/IB transports.
#[test]
fn bcast_triangular_across_mixed_transports() {
    let specs = [
        RankSpec {
            gpu: GpuId(0),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(1),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(2),
            node: 1,
        },
        RankSpec {
            gpu: GpuId(3),
            node: 1,
        },
    ];
    let mut sim = Sim::new(MpiWorld::new(&specs, 4, MpiConfig::default()));
    let n = 96u64;
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    let t = DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit();
    let len = t.extent() as u64;
    let bufs: Vec<Ptr> = (0..4).map(|r| alloc(&mut sim, r, len, true)).collect();
    let data = pattern(len as usize);
    sim.world.mem().write(bufs[0], &data).unwrap();

    let req = mpirt::bcast(&mut sim, 0, &t, 1, &bufs, 7);
    sim.run();
    assert!(req.is_complete());
    for (r, b) in bufs.iter().enumerate().skip(1) {
        let got = sim.world.mem().read_vec(*b, len).unwrap();
        for s in t.segments(1) {
            let range = s.disp as usize..(s.disp + s.len as i64) as usize;
            assert_eq!(&got[range.clone()], &data[range], "rank {r}");
        }
    }
}

/// One-sided put across nodes (copy-in/out path under the hood).
#[test]
fn onesided_put_over_ib() {
    let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
    let ty = DataType::vector(64, 8, 16, &DataType::double())
        .unwrap()
        .commit();
    let (base, len) = buffer_span(&ty, 1);
    let span = (base as usize + len) as u64;
    let bufs: Vec<Ptr> = (0..2).map(|r| alloc(&mut sim, r, span, true)).collect();
    let win = mpirt::Win::create(&sim, bufs.clone(), vec![span; 2]);
    let data = pattern(len);
    sim.world
        .mem()
        .write(bufs[0].add(base as u64), &data)
        .unwrap();

    let req = mpirt::put(
        &mut sim,
        &win,
        0,
        mpirt::RmaArgs {
            ty: ty.clone(),
            count: 1,
        },
        bufs[0].add(base as u64),
        1,
        base as u64,
        mpirt::RmaArgs {
            ty: ty.clone(),
            count: 1,
        },
    );
    sim.run();
    assert_eq!(req.expect_bytes(), ty.size());
    let got = sim
        .world
        .mem()
        .read_vec(bufs[1].add(base as u64), len as u64)
        .unwrap();
    assert_eq!(
        reference_pack(&ty, 1, &got, 0),
        reference_pack(&ty, 1, &data, 0)
    );
}

/// Sends to distinct peers from one rank share nothing and both finish.
#[test]
fn fan_out_to_two_peers() {
    let specs = [
        RankSpec {
            gpu: GpuId(0),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(1),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(2),
            node: 1,
        },
    ];
    let mut sim = Sim::new(MpiWorld::new(&specs, 3, MpiConfig::default()));
    let ty = DataType::contiguous(40_000, &DataType::double())
        .unwrap()
        .commit();
    let sb = alloc(&mut sim, 0, ty.size(), true);
    let r1b = alloc(&mut sim, 1, ty.size(), true);
    let r2b = alloc(&mut sim, 2, ty.size(), true);
    let reqs = vec![
        isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 0,
                ty: ty.clone(),
                count: 1,
                buf: sb,
            },
        ),
        isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 2,
                tag: 0,
                ty: ty.clone(),
                count: 1,
                buf: sb,
            },
        ),
        irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(0),
                ty: ty.clone(),
                count: 1,
                buf: r1b,
            },
        ),
        irecv(
            &mut sim,
            RecvArgs {
                rank: 2,
                src: Some(0),
                tag: Some(0),
                ty: ty.clone(),
                count: 1,
                buf: r2b,
            },
        ),
    ];
    wait_all(&mut sim, &reqs).expect("transfers failed");
}
