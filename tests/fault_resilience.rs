//! Fault-injection resilience properties.
//!
//! Three guarantees, exercised end to end through the MPI runtime:
//!
//! 1. A schedule of *retriable* faults (transient AM drops, copy/kernel
//!    hiccups, IPC-open and registration failures) never corrupts or
//!    loses data — delivery is byte-identical to a fault-free run on
//!    every path class (shared-memory IPC, zero-copy RDMA, staged
//!    copy-in/copy-out).
//! 2. *Permanent* capability loss renegotiates the path: IPC loss
//!    demotes SmIpc to copy-in/copy-out, pinned-registration loss
//!    demotes zero-copy to the staged pipeline — in both cases the
//!    transfer still completes with the exact bytes the fallback path
//!    would have delivered, and the demotion is visible in metrics.
//! 3. An armed-but-silent fault plan (`fault.injected == 0`) leaves the
//!    simulation bit-identical to one with no plan at all: same
//!    makespan, same counters.

use datatype::testutil::{buffer_span, pattern, reference_pack};
use datatype::DataType;
use faultsim::{counters, FaultKind, FaultOp, FaultPlan};
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr};
use mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use mpirt::{MpiConfig, Session};
use simcore::Metrics;

/// A strided vector large enough to take the rendezvous pipeline
/// (well above the 64 KiB eager limit): 512 blocks of 64 doubles.
fn big_vec() -> DataType {
    DataType::vector(512, 64, 128, &DataType::double())
        .unwrap()
        .commit()
}

/// Allocate + optionally fill a typed buffer for `rank`.
fn alloc_typed(
    sess: &mut Session,
    rank: usize,
    ty: &DataType,
    device: bool,
    fill: bool,
) -> (Ptr, Vec<u8>, i64, u64) {
    let (base, len) = buffer_span(ty, 1);
    let space = if device {
        MemSpace::Device(sess.world.mpi.ranks[rank].gpu)
    } else {
        MemSpace::Host
    };
    let buf = sess.world.mem().alloc(space, len.max(1) as u64).unwrap();
    let bytes = if fill { pattern(len) } else { vec![0u8; len] };
    sess.world.mem().write(buf, &bytes).unwrap();
    (buf.add(base as u64), bytes, base, len as u64)
}

/// Run one typed transfer rank 0 → rank 1, assert it matches the
/// reference pack of the sent pattern, and return the delivered packed
/// stream for cross-run comparison.
fn deliver(sess: &mut Session, ty: &DataType, device: bool) -> Vec<u8> {
    let (sbuf, sbytes, sbase, _) = alloc_typed(sess, 0, ty, device, true);
    let (rbuf, _, rbase, rlen) = alloc_typed(sess, 1, ty, device, false);
    let s = isend(
        sess,
        SendArgs {
            from: 0,
            to: 1,
            tag: 7,
            ty: ty.clone(),
            count: 1,
            buf: sbuf,
        },
    );
    let r = irecv(
        sess,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(7),
            ty: ty.clone(),
            count: 1,
            buf: rbuf,
        },
    );
    wait_all(sess, &[s, r]).expect("transfer failed");
    let expect = reference_pack(ty, 1, &sbytes, sbase);
    let got_buf = sess
        .world
        .mem()
        .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
        .unwrap();
    let got = reference_pack(ty, 1, &got_buf, rbase);
    assert_eq!(got, expect, "payload mismatch");
    got
}

/// Every fault a rule like this can inject is retriable.
fn retriable_plan(seed: u64) -> FaultPlan {
    FaultPlan::empty()
        .with_seed(seed)
        .with_rule(None, FaultKind::Transient, 0.3)
}

#[derive(Clone, Copy)]
enum Path {
    SmIpc,
    ZeroCopy,
    CopyInOut,
}

fn session_for(path: Path, plan: FaultPlan) -> Session {
    let config = MpiConfig {
        fault_plan: plan,
        zero_copy: !matches!(path, Path::CopyInOut),
        ..Default::default()
    };
    let b = Session::builder().config(config);
    match path {
        Path::SmIpc => b.two_ranks_two_gpus(),
        Path::ZeroCopy | Path::CopyInOut => b.two_ranks_ib(),
    }
    .build()
}

/// Property: a retriable-only fault schedule delivers byte-identical
/// data on a given path class, and faults actually fired.
fn check_retriable(path: Path, seed: u64) {
    let ty = big_vec();
    let clean = deliver(&mut session_for(path, FaultPlan::empty()), &ty, true);
    let mut faulted = session_for(path, retriable_plan(seed));
    let got = deliver(&mut faulted, &ty, true);
    assert_eq!(got, clean, "retriable faults must not alter delivery");
    let m = faulted.metrics();
    assert!(
        m.counter(counters::FAULT_INJECTED) > 0,
        "schedule injected nothing — test is vacuous"
    );
}

#[test]
fn retriable_schedule_is_lossless_on_sm_ipc() {
    check_retriable(Path::SmIpc, 42);
}

#[test]
fn retriable_schedule_is_lossless_on_zero_copy() {
    check_retriable(Path::ZeroCopy, 43);
}

#[test]
fn retriable_schedule_is_lossless_on_copy_in_out() {
    check_retriable(Path::CopyInOut, 44);
}

#[test]
fn permanent_ipc_loss_renegotiates_to_copy_in_out() {
    let ty = big_vec();
    // Reference: the same transfer on a world configured for staged
    // copy-in/copy-out from the start.
    let config = MpiConfig {
        use_ipc: false,
        ..Default::default()
    };
    let mut staged = Session::builder()
        .config(config)
        .two_ranks_two_gpus()
        .build();
    let want = deliver(&mut staged, &ty, true);

    // Faulted: IPC handle opens permanently fail; the SmIpc handshake
    // must give up and replay the transfer over copy-in/copy-out.
    let plan = FaultPlan::empty().with_seed(3).with_rule(
        Some(FaultOp::IpcOpen),
        FaultKind::PermanentLoss,
        1.0,
    );
    let config = MpiConfig {
        fault_plan: plan,
        ..Default::default()
    };
    let mut faulted = Session::builder()
        .config(config)
        .two_ranks_two_gpus()
        .build();
    let got = deliver(&mut faulted, &ty, true);
    assert_eq!(got, want, "renegotiated path must deliver the same bytes");
    assert!(
        !faulted.world.mpi.ipc_runtime_ok,
        "permanent IPC loss must stick"
    );
    let fallbacks = faulted.metrics().counter(counters::FALLBACK_EVENTS);
    assert!(fallbacks >= 1, "demotion must be metered");

    // The demotion is sticky: a second transfer routes straight to
    // copy-in/copy-out without another failed handshake.
    deliver(&mut faulted, &ty, true);
    assert_eq!(
        faulted.metrics().counter(counters::FALLBACK_EVENTS),
        fallbacks,
        "second transfer must not renegotiate again"
    );
}

#[test]
fn permanent_pin_loss_demotes_zero_copy_to_staged() {
    let ty = big_vec();
    let config = MpiConfig {
        zero_copy: false,
        ..Default::default()
    };
    let mut staged = Session::builder().config(config).two_ranks_ib().build();
    let want = deliver(&mut staged, &ty, true);

    let plan = FaultPlan::empty().with_seed(5).with_rule(
        Some(FaultOp::PinnedRegister),
        FaultKind::PermanentLoss,
        1.0,
    );
    let config = MpiConfig {
        fault_plan: plan,
        ..Default::default()
    };
    let mut faulted = Session::builder().config(config).two_ranks_ib().build();
    let got = deliver(&mut faulted, &ty, true);
    assert_eq!(got, want, "staged fallback must deliver the same bytes");
    assert!(!faulted.world.mpi.zero_copy_runtime_ok);
    assert!(faulted.metrics().counter(counters::FALLBACK_EVENTS) >= 1);
}

/// Run one recorded transfer under `plan` and return the session's
/// final metrics.
fn metrics_under(plan: FaultPlan) -> Metrics {
    let config = MpiConfig {
        fault_plan: plan,
        ..Default::default()
    };
    let mut sess = Session::builder()
        .config(config)
        .two_ranks_two_gpus()
        .record()
        .build();
    deliver(&mut sess, &big_vec(), true);
    sess.finish()
}

#[test]
fn silent_plan_is_invisible_in_trace_and_metrics() {
    // An armed engine whose rules can never fire: the rolls happen but
    // `fault.injected` stays zero — and that must imply the run is
    // indistinguishable from one with no plan at all.
    let silent = FaultPlan::empty()
        .with_seed(9)
        .with_rule(None, FaultKind::Transient, 0.0);
    let armed = metrics_under(silent);
    let off = metrics_under(FaultPlan::empty());
    assert_eq!(armed.counter(counters::FAULT_INJECTED), 0);
    assert_eq!(armed.makespan, off.makespan, "idle faultsim cost time");
    assert_eq!(armed.counters, off.counters, "idle faultsim left a trace");
}
